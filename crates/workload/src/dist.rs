//! Service-time distributions for the synthetic microbenchmarks (§7).
//!
//! The paper's synthetic service has a configurable CPU service time: fixed
//! (S̄ = 1µs in §7.1–7.3), or bimodal — 10 % of requests 10× longer — for
//! the scheduling experiments (§7.3, Figure 11). Exponential is included
//! for completeness/ablations.

use rand::rngs::SmallRng;
use rand::Rng;

/// A distribution of per-request CPU service times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceDist {
    /// Every request takes exactly `ns`.
    Fixed {
        /// Service time, ns.
        ns: u64,
    },
    /// A fraction of requests is `mult`× longer than the common case; the
    /// *mean* is `mean_ns` (the paper quotes bimodal distributions by their
    /// mean, e.g. S̄ = 10µs with 10 % of requests 10× longer).
    Bimodal {
        /// Mean service time, ns.
        mean_ns: u64,
        /// Fraction of long requests (e.g. 0.1).
        frac_long: f64,
        /// Length multiplier of long requests vs short ones (e.g. 10).
        mult: u64,
    },
    /// Exponentially distributed with the given mean.
    Exponential {
        /// Mean service time, ns.
        mean_ns: u64,
    },
}

impl ServiceDist {
    /// The distribution's mean, ns.
    pub fn mean_ns(&self) -> u64 {
        match self {
            ServiceDist::Fixed { ns } => *ns,
            ServiceDist::Bimodal { mean_ns, .. } | ServiceDist::Exponential { mean_ns } => *mean_ns,
        }
    }

    /// Draws one service time.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            ServiceDist::Fixed { ns } => *ns,
            ServiceDist::Bimodal {
                mean_ns,
                frac_long,
                mult,
            } => {
                // mean = short * (1 - f) + short * mult * f
                // → short = mean / (1 - f + mult * f)
                let short = *mean_ns as f64 / (1.0 - frac_long + *mult as f64 * frac_long);
                if rng.gen::<f64>() < *frac_long {
                    (short * *mult as f64) as u64
                } else {
                    short as u64
                }
            }
            ServiceDist::Exponential { mean_ns } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-(u.ln()) * *mean_ns as f64) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(d: ServiceDist, n: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(3);
        (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn fixed_is_constant() {
        let d = ServiceDist::Fixed { ns: 1_000 };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1_000);
        }
        assert_eq!(d.mean_ns(), 1_000);
    }

    #[test]
    fn bimodal_hits_requested_mean() {
        let d = ServiceDist::Bimodal {
            mean_ns: 10_000,
            frac_long: 0.1,
            mult: 10,
        };
        let m = mean_of(d, 200_000);
        assert!((m - 10_000.0).abs() < 300.0, "mean = {m}");
    }

    #[test]
    fn bimodal_has_two_modes() {
        let d = ServiceDist::Bimodal {
            mean_ns: 10_000,
            frac_long: 0.1,
            mult: 10,
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let mut longs = 0;
        let mut shorts = 0;
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            // short ≈ 5263ns, long ≈ 52631ns.
            if s > 30_000 {
                longs += 1;
            } else {
                shorts += 1;
            }
        }
        assert!((800..1200).contains(&longs), "{longs} long requests");
        assert_eq!(longs + shorts, 10_000);
    }

    #[test]
    fn exponential_hits_mean() {
        let d = ServiceDist::Exponential { mean_ns: 5_000 };
        let m = mean_of(d, 200_000);
        assert!((m - 5_000.0).abs() < 150.0, "mean = {m}");
    }
}
