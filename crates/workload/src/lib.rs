//! # workload — synthetic-service and YCSB workload generators
//!
//! Everything §7 of the HovercRaft paper throws at the system:
//!
//! * the **synthetic service** ([`SynthService`], [`SynthSpec`]) with
//!   configurable service time, request size, reply size, and read-only
//!   fraction — used by every microbenchmark (Figures 7–12);
//! * **service-time distributions** ([`ServiceDist`]): fixed, bimodal
//!   (10 % of requests 10× longer, Figure 11), exponential;
//! * **YCSB** ([`YcsbGen`]): the Cooper et al. cloud-serving benchmark,
//!   with workload **E** (95 % SCAN / 5 % INSERT over 1 kB records,
//!   threaded conversations) as the §7.5 headline plus A–D for ablations;
//! * the **zipfian** generators YCSB is built on ([`Zipfian`]).

#![warn(missing_docs)]

mod dist;
mod synth;
mod ycsb;
mod zipf;

pub use dist::ServiceDist;
pub use synth::{decode_request, encode_request, SynthService, SynthSpec, SYNTH_MIN_BODY};
pub use ycsb::{key_of, RecordSpec, YcsbGen, YcsbOp, YcsbWorkload};
pub use zipf::{fnv_scramble, Zipfian};
