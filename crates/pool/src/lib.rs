//! Scoped work-stealing thread pool for the experiment suite.
//!
//! Every simulation in this reproduction is an independent, seeded,
//! deterministic world, so the figure grids, the chaos corpus, and the
//! randomized property sweeps are embarrassingly parallel — as long as the
//! *scheduling* layer never leaks nondeterminism into the results. This
//! crate provides the minimal pool that makes that safe:
//!
//! * **Scoped**: [`Pool::scope`] mirrors `std::thread::scope`, so jobs may
//!   borrow data owned by the caller's stack frame (`'env`) without any
//!   `unsafe` or reference counting gymnastics at the call sites.
//! * **Work-stealing**: one shared injector queue plus a per-worker LIFO
//!   deque. A worker pops its own deque from the back (cache-warm, depth
//!   first), steals from other deques and the injector from the front
//!   (oldest work first). The structure is guarded by a single mutex +
//!   condvar — jobs here are whole simulator runs (hundreds of
//!   microseconds to minutes), so queue contention is noise and the
//!   simplicity buys obvious correctness.
//! * **Never oversubscribed**: [`Pool::new`] treats the worker count as a
//!   *sharding hint*, not a thread mandate. The number of executors (the
//!   caller, which helps at every join, plus spawned workers) is capped at
//!   `available_parallelism`. Running more allocation-heavy simulator
//!   worlds than cores concurrently was measured to cost 10–20 % in pure
//!   user time on this container (allocator arena churn + cache
//!   interference between interleaved worlds; see DESIGN.md §13), so
//!   `HC_JOBS=4` on a single-core box now degrades to serial-equivalent
//!   execution instead of paying that tax. [`Pool::exact`] opts out for
//!   tests that deliberately exercise cross-thread interleaving.
//! * **Deterministic merges**: [`Scope::join_map`] fans a `Vec` of items
//!   out as subtasks and returns outputs **in input order**, regardless of
//!   which worker ran what when. Callers that write results in job-index
//!   order are byte-identical to a serial run by construction. Executor
//!   capping never touches outputs — only *when* a job runs changes.
//! * **Panic propagation without poisoning**: a panicking job never hangs
//!   the pool, and never poisons it either — every internal lock recovers
//!   from [`std::sync::PoisonError`], so the *first* panic payload is
//!   carried out intact (re-raised at the owning [`Scope::join_map`] for
//!   batch subtasks, or at [`Pool::scope`] exit for detached
//!   [`Scope::spawn`] tasks) instead of being buried under secondary
//!   `PoisonError` panics from other workers.
//! * **Nested fan-out without deadlock**: a job may call
//!   [`Scope::join_map`] itself. While waiting for its batch, the caller
//!   *helps*: it executes queued tasks instead of blocking, so a pool of
//!   `N` workers can sit under arbitrarily nested sweeps (figure → load
//!   grid → seeds) without reserving threads per level.
//! * **Observable**: the pool keeps per-executor counters (tasks run,
//!   local/injector/steal hit classes, park/wake transitions, and — under
//!   [`Pool::scope_profiled`] — lock-wait and task-busy nanoseconds).
//!   `run_all_figs --profile` surfaces them as `pool_stats_*` keys.
//!
//! Like the other vendored crates in this workspace (`fxhash`,
//! `criterion`, …) this is dependency-free and implements exactly the
//! subset the suite needs — it is not a general-purpose rayon stand-in.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Panic payload carried from a worker to the thread that re-raises it.
type Payload = Box<dyn Any + Send + 'static>;

/// A queued unit of work. Tasks receive the scope handle so they can fan
/// out further work onto the same pool.
type Task<'scope, 'env> = Box<dyn FnOnce(&Scope<'scope, 'env>) + Send + 'scope>;

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Pool state is always consistent at lock-release boundaries (tasks run
/// *outside* the lock), so a poisoned lock carries no torn invariants —
/// recovering keeps the first panic's payload propagating instead of
/// cascading `PoisonError` panics through every other worker.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of jobs to shard across, from the environment.
///
/// `HC_JOBS` overrides; unset or unparsable falls back to
/// `std::thread::available_parallelism`. A value of `1` means "run
/// serially" — sweep layers built on this crate bypass the pool entirely
/// in that case, so `HC_JOBS=1` is an *exact* serial execution, not a
/// one-worker approximation of one. Values above the core count are
/// accepted (they shape sharding) but [`Pool::new`] will not spawn more
/// executors than cores.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("HC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    available_cores()
}

/// `std::thread::available_parallelism` with a safe fallback.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-size scoped work-stealing pool.
///
/// The pool itself is just a worker count; threads are spawned per
/// [`Pool::scope`] call (via `std::thread::scope`) and joined before it
/// returns. That keeps the lifetime story identical to std's scoped
/// threads and means an idle `Pool` holds no OS resources.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    /// Requested job count (the sharding hint; what `HC_JOBS` asked for).
    requested: usize,
    /// OS threads `scope` will actually spawn alongside the caller.
    spawn: usize,
}

impl Pool {
    /// A pool sharding across `jobs` (clamped to at least 1). The caller
    /// thread is one executor (it helps at every join); additional worker
    /// threads are spawned so that the total executor count is
    /// `min(jobs, available_parallelism)` — never more runnable
    /// simulation threads than cores.
    pub fn new(jobs: usize) -> Self {
        let requested = jobs.max(1);
        let executors = requested.min(available_cores());
        Pool {
            requested,
            spawn: executors - 1,
        }
    }

    /// A pool that spawns exactly `workers` OS worker threads regardless
    /// of the core count (the caller still helps at joins, so there are
    /// `workers + 1` potential executors). For tests that deliberately
    /// exercise cross-thread interleaving and oversubscription; production
    /// sweeps use [`Pool::new`].
    pub fn exact(workers: usize) -> Self {
        let requested = workers.max(1);
        Pool {
            requested,
            spawn: requested,
        }
    }

    /// A pool sized by `HC_JOBS` / available parallelism.
    pub fn from_env() -> Self {
        Pool::new(default_jobs())
    }

    /// The requested job count (sharding hint).
    pub fn workers(&self) -> usize {
        self.requested
    }

    /// OS worker threads `scope` will spawn (executors minus the caller).
    pub fn spawned_workers(&self) -> usize {
        self.spawn
    }

    /// Total executors: spawned workers plus the helping caller.
    pub fn executors(&self) -> usize {
        self.spawn + 1
    }

    /// Runs `f` with a [`Scope`] on which tasks can be spawned. Blocks
    /// until `f` *and every task spawned on the scope* have finished, then
    /// returns `f`'s value. If any detached task panicked, the first
    /// payload is re-raised here; batch-task panics are re-raised at the
    /// owning [`Scope::join_map`] instead.
    pub fn scope<'env, T, F>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        self.scope_inner(f, false).0
    }

    /// Like [`Pool::scope`], but times lock waits and task bodies and
    /// returns the pool's counters alongside the result.
    pub fn scope_profiled<'env, T, F>(&self, f: F) -> (T, PoolStats)
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        self.scope_inner(f, true)
    }

    fn scope_inner<'env, T, F>(&self, f: F, profile: bool) -> (T, PoolStats)
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        // The shared state lives in an `Arc` (like std's own `ScopeData`)
        // so worker threads move owned handles instead of borrowing a
        // local — borrowing would tie `'scope` to the borrow region and
        // trip the drop checker on the task queues.
        let t0 = Instant::now();
        let shared = Arc::new(Shared::new(self.spawn, profile));
        let out = std::thread::scope(|ts| {
            for w in 0..self.spawn {
                let sh = Arc::clone(&shared);
                ts.spawn(move || worker_loop(&sh, w));
            }
            let caller = Scope {
                shared: Arc::clone(&shared),
                worker: None,
            };
            // If `f` unwinds, the guard still flips `shutdown` so the
            // workers drain and exit instead of hanging the implicit join
            // at the end of `std::thread::scope`.
            let guard = ShutdownGuard(Arc::clone(&shared));
            let out = f(&caller);
            caller.wait_idle();
            drop(guard);
            out
        });
        if let Some(p) = plock(&shared.panic).take() {
            resume_unwind(p);
        }
        let mut stats = {
            let g = plock(&shared.state);
            g.stats.clone()
        };
        stats.requested = self.requested;
        stats.spawned = self.spawn;
        stats.wall_ns = t0.elapsed().as_nanos() as u64;
        (out, stats)
    }
}

/// Counters for one executor (the caller or one worker thread).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Tasks this executor ran to completion.
    pub tasks_run: u64,
    /// Pops satisfied from the executor's own deque (cache-warm LIFO).
    pub local_hits: u64,
    /// Pops satisfied from the shared injector queue.
    pub injector_hits: u64,
    /// Pops satisfied by stealing another worker's deque.
    pub steals: u64,
    /// Times this executor blocked on the work condvar.
    pub parks: u64,
    /// Times this executor was woken from the work condvar.
    pub wakes: u64,
    /// Nanoseconds spent waiting to acquire the pool lock (profiled runs
    /// only; zero otherwise).
    pub lock_wait_ns: u64,
    /// Nanoseconds spent inside task bodies (profiled runs only).
    pub busy_ns: u64,
}

impl ExecStats {
    fn add(&mut self, o: &ExecStats) {
        self.tasks_run += o.tasks_run;
        self.local_hits += o.local_hits;
        self.injector_hits += o.injector_hits;
        self.steals += o.steals;
        self.parks += o.parks;
        self.wakes += o.wakes;
        self.lock_wait_ns += o.lock_wait_ns;
        self.busy_ns += o.busy_ns;
    }
}

/// Counters for one [`Pool::scope`] invocation. Slot 0 is the caller
/// thread; slot `w + 1` is worker `w`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Requested job count (the sharding hint).
    pub requested: usize,
    /// Worker threads actually spawned.
    pub spawned: usize,
    /// Scope wall-clock, nanoseconds.
    pub wall_ns: u64,
    /// Per-executor counters: `[caller, worker 0, worker 1, ...]`.
    pub per_exec: Vec<ExecStats>,
    /// Tasks pushed to the shared injector queue.
    pub injector_pushes: u64,
    /// Tasks pushed to a worker's own deque.
    pub deque_pushes: u64,
    /// Condvar notifications issued.
    pub notifies: u64,
}

impl PoolStats {
    fn new(workers: usize) -> Self {
        PoolStats {
            per_exec: vec![ExecStats::default(); workers + 1],
            ..PoolStats::default()
        }
    }

    /// Sum of all per-executor counters.
    pub fn totals(&self) -> ExecStats {
        let mut t = ExecStats::default();
        for e in &self.per_exec {
            t.add(e);
        }
        t
    }

    /// One-line-per-executor human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "pool: requested {} jobs, spawned {} workers (+caller), wall {:.3}s, \
             {} injector / {} deque pushes, {} notifies",
            self.requested,
            self.spawned,
            self.wall_ns as f64 / 1e9,
            self.injector_pushes,
            self.deque_pushes,
            self.notifies,
        );
        for (i, e) in self.per_exec.iter().enumerate() {
            let name = if i == 0 {
                "caller".to_string()
            } else {
                format!("w{}", i - 1)
            };
            let _ = writeln!(
                s,
                "  {name:>6}: {} tasks ({} local, {} injector, {} stolen), \
                 {} parks / {} wakes, lock-wait {:.3}ms, busy {:.3}s",
                e.tasks_run,
                e.local_hits,
                e.injector_hits,
                e.steals,
                e.parks,
                e.wakes,
                e.lock_wait_ns as f64 / 1e6,
                e.busy_ns as f64 / 1e9,
            );
        }
        s
    }
}

/// Handle for spawning work onto an active pool scope.
///
/// `'scope` is the lifetime of the scope itself (tasks must outlive it),
/// `'env` the environment borrowed by the scope — the same split as
/// `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    shared: Arc<Shared<'scope, 'env>>,
    /// `Some(i)` when this handle lives on worker `i` (its spawns go to
    /// its own deque); `None` on the caller thread (spawns go to the
    /// injector).
    worker: Option<usize>,
}

/// Shared pool state for one `scope` invocation.
struct Shared<'scope, 'env: 'scope> {
    state: Mutex<State<'scope, 'env>>,
    /// Signalled on new work, shutdown, and when `pending` hits zero.
    work_cv: Condvar,
    /// First panic payload from a detached (non-batch) task.
    panic: Mutex<Option<Payload>>,
    /// Time lock waits and task bodies (adds two `Instant::now` per task
    /// and per contended acquire; off for plain `scope`).
    profile: bool,
}

struct State<'scope, 'env: 'scope> {
    /// Global FIFO queue: work from the caller thread and overflow.
    injector: VecDeque<Task<'scope, 'env>>,
    /// Per-worker deques: owner pops the back, thieves steal the front.
    deques: Vec<VecDeque<Task<'scope, 'env>>>,
    /// Tasks spawned but not yet completed.
    pending: usize,
    shutdown: bool,
    /// Per-executor and queue counters (cheap in-lock increments; always
    /// maintained).
    stats: PoolStats,
}

/// Stats slot for an executor: 0 = caller, w + 1 = worker w.
fn slot(worker: Option<usize>) -> usize {
    worker.map_or(0, |w| w + 1)
}

impl<'scope, 'env> Shared<'scope, 'env> {
    fn new(workers: usize, profile: bool) -> Self {
        Shared {
            state: Mutex::new(State {
                injector: VecDeque::new(),
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                shutdown: false,
                stats: PoolStats::new(workers),
            }),
            work_cv: Condvar::new(),
            panic: Mutex::new(None),
            profile,
        }
    }

    /// Acquires the state lock, attributing wait time to `who` when
    /// profiling.
    fn lock(&self, who: Option<usize>) -> MutexGuard<'_, State<'scope, 'env>> {
        if self.profile {
            let t = Instant::now();
            let mut g = plock(&self.state);
            let wait = t.elapsed().as_nanos() as u64;
            if wait > 0 {
                g.stats.per_exec[slot(who)].lock_wait_ns += wait;
            }
            g
        } else {
            plock(&self.state)
        }
    }

    /// Queues a task from `worker` (or the caller thread when `None`).
    fn push(&self, worker: Option<usize>, task: Task<'scope, 'env>) {
        let mut g = self.lock(worker);
        match worker {
            Some(w) => {
                g.deques[w].push_back(task);
                g.stats.deque_pushes += 1;
            }
            None => {
                g.injector.push_back(task);
                g.stats.injector_pushes += 1;
            }
        }
        g.pending += 1;
        g.stats.notifies += 1;
        drop(g);
        self.work_cv.notify_one();
    }

    /// Records the completion of one task by `who`.
    fn complete_one(&self, who: Option<usize>, busy_ns: u64) {
        let mut g = self.lock(who);
        g.pending -= 1;
        let e = &mut g.stats.per_exec[slot(who)];
        e.tasks_run += 1;
        e.busy_ns += busy_ns;
        let idle = g.pending == 0;
        drop(g);
        if idle {
            self.work_cv.notify_all();
        }
    }

    /// Stores the first detached-task panic payload.
    fn record_panic(&self, payload: Payload) {
        let mut g = plock(&self.panic);
        if g.is_none() {
            *g = Some(payload);
        }
    }

    fn shutdown(&self) {
        plock(&self.state).shutdown = true;
        self.work_cv.notify_all();
    }
}

/// Pops runnable work for `worker` under the state lock: own deque from
/// the back first (LIFO — depth-first, cache-warm), then the injector,
/// then steals the front of the other deques (oldest first). Classifies
/// the hit into the executor's counters.
fn pop_task<'scope, 'env>(
    g: &mut State<'scope, 'env>,
    worker: Option<usize>,
) -> Option<Task<'scope, 'env>> {
    let si = slot(worker);
    if let Some(w) = worker {
        if let Some(t) = g.deques[w].pop_back() {
            g.stats.per_exec[si].local_hits += 1;
            return Some(t);
        }
    }
    if let Some(t) = g.injector.pop_front() {
        g.stats.per_exec[si].injector_hits += 1;
        return Some(t);
    }
    let own = worker.unwrap_or(usize::MAX);
    for i in 0..g.deques.len() {
        if i != own {
            if let Some(t) = g.deques[i].pop_front() {
                g.stats.per_exec[si].steals += 1;
                return Some(t);
            }
        }
    }
    None
}

fn worker_loop<'scope, 'env>(shared: &Arc<Shared<'scope, 'env>>, w: usize) {
    let scope = Scope {
        shared: Arc::clone(shared),
        worker: Some(w),
    };
    loop {
        let task = {
            let mut g = shared.lock(Some(w));
            loop {
                if let Some(t) = pop_task(&mut g, Some(w)) {
                    break t;
                }
                if g.shutdown {
                    return;
                }
                g.stats.per_exec[w + 1].parks += 1;
                g = shared
                    .work_cv
                    .wait(g)
                    .unwrap_or_else(PoisonError::into_inner);
                g.stats.per_exec[w + 1].wakes += 1;
            }
        };
        scope.run_task(task);
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Runs one queued task on this thread, routing a panic to the
    /// detached-panic slot unless the task handles it itself (batch
    /// subtasks catch their own panics before this sees them).
    fn run_task(&self, task: Task<'scope, 'env>) {
        // Busy time is only charged by the *outermost* task on this
        // thread: helping joins re-enter run_task, and an inner batch's
        // time is already inside the outer task's interval — charging both
        // would report more busy time than wall time.
        thread_local! {
            static TASK_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        let t0 = self.shared.profile.then(|| {
            TASK_DEPTH.with(|d| d.set(d.get() + 1));
            Instant::now()
        });
        let result = catch_unwind(AssertUnwindSafe(|| task(self)));
        if let Err(payload) = result {
            self.shared.record_panic(payload);
        }
        let busy = t0.map_or(0, |t| {
            let outermost = TASK_DEPTH.with(|d| {
                d.set(d.get() - 1);
                d.get() == 0
            });
            if outermost {
                t.elapsed().as_nanos() as u64
            } else {
                0
            }
        });
        self.shared.complete_one(self.worker, busy);
    }

    /// Total executors of the owning pool (spawned workers + caller).
    pub fn executors(&self) -> usize {
        plock(&self.shared.state).deques.len() + 1
    }

    /// Spawns a detached task. A panic in `f` is captured and re-raised
    /// when the owning [`Pool::scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_scoped(move |_| f());
    }

    /// Like [`Scope::spawn`], but the task receives the scope handle so it
    /// can spawn or `join_map` further work on the same pool.
    pub fn spawn_scoped<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        self.shared.push(self.worker, Box::new(f));
    }

    /// Fans `items` out as one subtask each, running `f(scope, index,
    /// item)` on pool workers, and returns the outputs **in input order**.
    ///
    /// The calling thread *helps*: while its batch is outstanding it
    /// executes queued tasks (its own deque, the injector, steals) instead
    /// of blocking, so `join_map` may be freely nested — a figure task can
    /// fan out its load grid, whose points fan out seeds — without
    /// deadlocking a fixed-size pool.
    ///
    /// If any subtask panics, the lowest-indexed payload wins nothing —
    /// the *first recorded* payload is re-raised here once the whole batch
    /// has drained, so a panic never leaks tasks that still borrow live
    /// state.
    ///
    /// `'static` bounds: subtasks may outlive the frame of the task that
    /// spawned them (only `'env` outlives the scope), so items, outputs,
    /// and the map function must own their data.
    pub fn join_map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(&Scope<'scope, 'env>, usize, I) -> O + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            slots: Mutex::new((0..n).map(|_| None).collect::<Vec<Option<O>>>()),
            left: Mutex::new(n),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let f = Arc::new(f);
        let wake = {
            let mut g = self.shared.lock(self.worker);
            for (i, item) in items.into_iter().enumerate() {
                let b = Arc::clone(&batch);
                let f = Arc::clone(&f);
                let task: Task<'scope, 'env> = Box::new(move |sc: &Scope<'scope, 'env>| {
                    let out = catch_unwind(AssertUnwindSafe(|| f(sc, i, item)));
                    match out {
                        Ok(o) => plock(&b.slots)[i] = Some(o),
                        Err(p) => {
                            let mut slot = plock(&b.panic);
                            if slot.is_none() {
                                *slot = Some(p);
                            }
                        }
                    }
                    let mut left = plock(&b.left);
                    *left -= 1;
                    if *left == 0 {
                        b.done_cv.notify_all();
                    }
                });
                match self.worker {
                    Some(w) => {
                        g.deques[w].push_back(task);
                        g.stats.deque_pushes += 1;
                    }
                    None => {
                        g.injector.push_back(task);
                        g.stats.injector_pushes += 1;
                    }
                }
                g.pending += 1;
            }
            // Wake only as many parked workers as there are new tasks —
            // `notify_all` on every batch made each idle worker take (and
            // fight over) the state lock just to find nothing.
            let wake = n.min(g.deques.len());
            g.stats.notifies += wake as u64;
            drop(g);
            wake
        };
        for _ in 0..wake {
            self.shared.work_cv.notify_one();
        }

        // Help until the batch drains: run anything runnable; only sleep
        // (on the batch condvar) when the queues are momentarily empty.
        loop {
            if *plock(&batch.left) == 0 {
                break;
            }
            let task = {
                let mut g = self.shared.lock(self.worker);
                pop_task(&mut g, self.worker)
            };
            match task {
                Some(t) => self.run_task(t),
                None => {
                    let left = plock(&batch.left);
                    if *left == 0 {
                        break;
                    }
                    // Batch subtasks may be running on other workers (or
                    // be spawned by them); wake on completion and rescan.
                    drop(
                        batch
                            .done_cv
                            .wait(left)
                            .unwrap_or_else(PoisonError::into_inner),
                    );
                }
            }
        }

        if let Some(p) = plock(&batch.panic).take() {
            resume_unwind(p);
        }
        let mut slots = plock(&batch.slots);
        slots
            .iter_mut()
            .map(|s| s.take().expect("join_map: missing output without panic"))
            .collect()
    }

    /// Blocks the caller until every task on the scope has completed,
    /// helping with queued work while it waits.
    fn wait_idle(&self) {
        loop {
            enum Step<'scope, 'env: 'scope> {
                Run(Task<'scope, 'env>),
                Done,
                Wait,
            }
            let step = {
                let mut g = self.shared.lock(self.worker);
                if let Some(t) = pop_task(&mut g, self.worker) {
                    Step::Run(t)
                } else if g.pending == 0 {
                    Step::Done
                } else {
                    g.stats.per_exec[slot(self.worker)].parks += 1;
                    drop(
                        self.shared
                            .work_cv
                            .wait(g)
                            .unwrap_or_else(PoisonError::into_inner),
                    );
                    Step::Wait
                }
            };
            match step {
                Step::Run(t) => self.run_task(t),
                Step::Done => return,
                Step::Wait => continue,
            }
        }
    }
}

/// Flips `shutdown` when dropped — including during an unwind of the
/// caller closure — so `Pool::scope` can never hang its worker join.
struct ShutdownGuard<'scope, 'env: 'scope>(Arc<Shared<'scope, 'env>>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Join state for one `join_map` batch.
struct Batch<O> {
    /// Output slots, indexed by input position.
    slots: Mutex<Vec<Option<O>>>,
    /// Subtasks not yet completed.
    left: Mutex<usize>,
    /// Signalled when `left` reaches zero.
    done_cv: Condvar,
    /// First panic payload from a subtask of *this* batch.
    panic: Mutex<Option<Payload>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_map_returns_outputs_in_input_order() {
        let pool = Pool::new(4);
        let out = pool.scope(|s| {
            s.join_map((0..100u64).collect(), |_, i, x| {
                // Stagger completion so out-of-order finishes are likely.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                x * x
            })
        });
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn scope_tasks_can_borrow_env() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        Pool::new(2).scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move || {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_join_map_on_same_pool_completes() {
        // 2 workers, 4 outer tasks each fanning out 8 inner tasks: only
        // possible without deadlock because waiting tasks help execute.
        let pool = Pool::exact(2);
        let out = pool.scope(|s| {
            s.join_map((0..4u64).collect(), |sc, _, outer| {
                let inner = sc.join_map((0..8u64).collect(), move |_, _, j| outer * 10 + j);
                inner.iter().sum::<u64>()
            })
        });
        let expect: Vec<u64> = (0..4).map(|o| (0..8).map(|j| o * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nested_scope_inside_task_completes() {
        // A task may open a whole nested Pool::scope of its own.
        let pool = Pool::exact(2);
        let out = pool.scope(|s| {
            s.join_map(vec![10u64, 20], |_, _, base| {
                Pool::exact(2)
                    .scope(|inner| inner.join_map(vec![1u64, 2, 3], move |_, _, x| base + x))
            })
        });
        assert_eq!(out, vec![vec![11, 12, 13], vec![21, 22, 23]]);
    }

    #[test]
    fn join_map_propagates_subtask_panic() {
        let pool = Pool::exact(3);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.join_map((0..16u32).collect(), |_, _, x| {
                    if x == 11 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        }));
        let payload = res.expect_err("panic must propagate out of join_map");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 11"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn spawn_panic_propagates_at_scope_exit() {
        let pool = Pool::exact(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("detached boom"));
            });
        }));
        let payload = res.expect_err("detached panic must propagate at scope exit");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "detached boom");
    }

    #[test]
    fn panic_in_nested_join_map_reaches_outer_caller() {
        let pool = Pool::exact(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.join_map(vec![0u32, 1], |sc, _, outer| {
                    sc.join_map(vec![0u32, 1, 2], move |_, _, inner| {
                        if outer == 1 && inner == 2 {
                            panic!("deep boom");
                        }
                        inner
                    })
                })
            })
        }));
        assert!(res.is_err(), "nested panic must reach the outer caller");
    }

    #[test]
    fn empty_join_map_is_fine() {
        let out: Vec<u32> = Pool::new(2).scope(|s| s.join_map(Vec::<u32>::new(), |_, _, x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn default_jobs_honors_env_override() {
        // Can't set env safely across parallel tests; just sanity-check
        // the fallback is at least 1.
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn new_caps_executors_at_core_count() {
        let cores = available_cores();
        let p = Pool::new(64);
        assert_eq!(p.workers(), 64, "requested count is preserved as a hint");
        assert_eq!(p.executors(), 64.min(cores));
        assert_eq!(p.spawned_workers(), p.executors() - 1);
        // `exact` bypasses the cap for interleaving tests.
        let e = Pool::exact(4);
        assert_eq!(e.spawned_workers(), 4);
        assert_eq!(e.executors(), 5);
    }

    #[test]
    fn stats_account_for_every_task() {
        let pool = Pool::exact(3);
        let (out, stats) = pool.scope_profiled(|s| {
            s.join_map((0..40u64).collect(), |_, _, x| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                x + 1
            })
        });
        assert_eq!(out.len(), 40);
        let t = stats.totals();
        assert_eq!(t.tasks_run, 40, "every task runs exactly once");
        assert_eq!(
            t.local_hits + t.injector_hits + t.steals,
            40,
            "every run task was popped from exactly one queue class"
        );
        assert_eq!(stats.injector_pushes + stats.deque_pushes, 40);
        assert_eq!(stats.spawned, 3);
        assert_eq!(stats.per_exec.len(), 4);
        assert!(t.busy_ns > 0, "profiled runs time task bodies");
    }

    #[test]
    fn scope_survives_a_panicking_task_without_poisoning() {
        // After one batch panics, the same scope must keep scheduling:
        // internal locks recover from poisoning so the *first* payload is
        // the only panic anyone observes.
        let pool = Pool::exact(2);
        let out = pool.scope(|s| {
            let first = std::panic::catch_unwind(AssertUnwindSafe(|| {
                s.join_map((0..8u32).collect(), |_, _, x| {
                    if x == 3 {
                        panic!("original failure x={x}");
                    }
                    x
                })
            }));
            let msg = match first {
                Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
                Ok(_) => panic!("batch with a panicking subtask must fail"),
            };
            assert!(
                msg.contains("original failure x=3"),
                "first panic message must survive intact, got {msg:?}"
            );
            // The pool is still fully operational afterwards.
            s.join_map((0..8u32).collect(), |_, _, x| x * 2)
        });
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
