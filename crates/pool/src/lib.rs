//! Scoped work-stealing thread pool for the experiment suite.
//!
//! Every simulation in this reproduction is an independent, seeded,
//! deterministic world, so the figure grids, the chaos corpus, and the
//! randomized property sweeps are embarrassingly parallel — as long as the
//! *scheduling* layer never leaks nondeterminism into the results. This
//! crate provides the minimal pool that makes that safe:
//!
//! * **Scoped**: [`Pool::scope`] mirrors `std::thread::scope`, so jobs may
//!   borrow data owned by the caller's stack frame (`'env`) without any
//!   `unsafe` or reference counting gymnastics at the call sites.
//! * **Work-stealing**: one shared injector queue plus a per-worker LIFO
//!   deque. A worker pops its own deque from the back (cache-warm, depth
//!   first), steals from other deques and the injector from the front
//!   (oldest work first). The structure is guarded by a single mutex +
//!   condvar — jobs here are whole simulator runs (hundreds of
//!   microseconds to minutes), so queue contention is noise and the
//!   simplicity buys obvious correctness.
//! * **Deterministic merges**: [`Scope::join_map`] fans a `Vec` of items
//!   out as subtasks and returns outputs **in input order**, regardless of
//!   which worker ran what when. Callers that write results in job-index
//!   order are byte-identical to a serial run by construction.
//! * **Panic propagation**: a panicking job never hangs the pool. The
//!   first payload is captured and re-raised — at the owning
//!   [`Scope::join_map`] call for batch subtasks, or at [`Pool::scope`]
//!   exit for detached [`Scope::spawn`] tasks.
//! * **Nested fan-out without deadlock**: a job may call
//!   [`Scope::join_map`] itself. While waiting for its batch, the caller
//!   *helps*: it executes queued tasks instead of blocking, so a pool of
//!   `N` workers can sit under arbitrarily nested sweeps (figure → load
//!   grid → seeds) without reserving threads per level.
//!
//! Like the other vendored crates in this workspace (`fxhash`,
//! `criterion`, …) this is dependency-free and implements exactly the
//! subset the suite needs — it is not a general-purpose rayon stand-in.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload carried from a worker to the thread that re-raises it.
type Payload = Box<dyn Any + Send + 'static>;

/// A queued unit of work. Tasks receive the scope handle so they can fan
/// out further work onto the same pool.
type Task<'scope, 'env> = Box<dyn FnOnce(&Scope<'scope, 'env>) + Send + 'scope>;

/// Number of workers to use, from the environment.
///
/// `HC_JOBS` overrides; unset or unparsable falls back to
/// `std::thread::available_parallelism`. A value of `1` means "run
/// serially" — sweep layers built on this crate bypass the pool entirely
/// in that case, so `HC_JOBS=1` is an *exact* serial execution, not a
/// one-worker approximation of one.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("HC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-size scoped work-stealing pool.
///
/// The pool itself is just a worker count; threads are spawned per
/// [`Pool::scope`] call (via `std::thread::scope`) and joined before it
/// returns. That keeps the lifetime story identical to std's scoped
/// threads and means an idle `Pool` holds no OS resources.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool sized by `HC_JOBS` / available parallelism.
    pub fn from_env() -> Self {
        Pool::new(default_jobs())
    }

    /// Number of worker threads `scope` will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` with a [`Scope`] on which tasks can be spawned. Blocks
    /// until `f` *and every task spawned on the scope* have finished, then
    /// returns `f`'s value. If any detached task panicked, the first
    /// payload is re-raised here; batch-task panics are re-raised at the
    /// owning [`Scope::join_map`] instead.
    pub fn scope<'env, T, F>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        // The shared state lives in an `Arc` (like std's own `ScopeData`)
        // so worker threads move owned handles instead of borrowing a
        // local — borrowing would tie `'scope` to the borrow region and
        // trip the drop checker on the task queues.
        let shared = Arc::new(Shared::new(self.workers));
        let out = std::thread::scope(|ts| {
            for w in 0..self.workers {
                let sh = Arc::clone(&shared);
                ts.spawn(move || worker_loop(&sh, w));
            }
            let caller = Scope {
                shared: Arc::clone(&shared),
                worker: None,
            };
            // If `f` unwinds, the guard still flips `shutdown` so the
            // workers drain and exit instead of hanging the implicit join
            // at the end of `std::thread::scope`.
            let guard = ShutdownGuard(Arc::clone(&shared));
            let out = f(&caller);
            caller.wait_idle();
            drop(guard);
            out
        });
        if let Some(p) = shared.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
        out
    }
}

/// Handle for spawning work onto an active pool scope.
///
/// `'scope` is the lifetime of the scope itself (tasks must outlive it),
/// `'env` the environment borrowed by the scope — the same split as
/// `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    shared: Arc<Shared<'scope, 'env>>,
    /// `Some(i)` when this handle lives on worker `i` (its spawns go to
    /// its own deque); `None` on the caller thread (spawns go to the
    /// injector).
    worker: Option<usize>,
}

/// Shared pool state for one `scope` invocation.
struct Shared<'scope, 'env: 'scope> {
    state: Mutex<State<'scope, 'env>>,
    /// Signalled on new work, shutdown, and when `pending` hits zero.
    work_cv: Condvar,
    /// First panic payload from a detached (non-batch) task.
    panic: Mutex<Option<Payload>>,
}

struct State<'scope, 'env: 'scope> {
    /// Global FIFO queue: work from the caller thread and overflow.
    injector: VecDeque<Task<'scope, 'env>>,
    /// Per-worker deques: owner pops the back, thieves steal the front.
    deques: Vec<VecDeque<Task<'scope, 'env>>>,
    /// Tasks spawned but not yet completed.
    pending: usize,
    shutdown: bool,
}

impl<'scope, 'env> Shared<'scope, 'env> {
    fn new(workers: usize) -> Self {
        Shared {
            state: Mutex::new(State {
                injector: VecDeque::new(),
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Queues a task from `worker` (or the caller thread when `None`).
    fn push(&self, worker: Option<usize>, task: Task<'scope, 'env>) {
        let mut g = self.state.lock().unwrap();
        match worker {
            Some(w) => g.deques[w].push_back(task),
            None => g.injector.push_back(task),
        }
        g.pending += 1;
        drop(g);
        self.work_cv.notify_one();
    }

    /// Records the completion of one task.
    fn complete_one(&self) {
        let mut g = self.state.lock().unwrap();
        g.pending -= 1;
        let idle = g.pending == 0;
        drop(g);
        if idle {
            self.work_cv.notify_all();
        }
    }

    /// Stores the first detached-task panic payload.
    fn record_panic(&self, payload: Payload) {
        let mut g = self.panic.lock().unwrap();
        if g.is_none() {
            *g = Some(payload);
        }
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work_cv.notify_all();
    }
}

/// Pops runnable work for `worker` under the state lock: own deque from
/// the back first (LIFO — depth-first, cache-warm), then the injector,
/// then steals the front of the other deques (oldest first).
fn pop_task<'scope, 'env>(
    g: &mut State<'scope, 'env>,
    worker: Option<usize>,
) -> Option<Task<'scope, 'env>> {
    if let Some(w) = worker {
        if let Some(t) = g.deques[w].pop_back() {
            return Some(t);
        }
    }
    if let Some(t) = g.injector.pop_front() {
        return Some(t);
    }
    let own = worker.unwrap_or(usize::MAX);
    for (i, dq) in g.deques.iter_mut().enumerate() {
        if i != own {
            if let Some(t) = dq.pop_front() {
                return Some(t);
            }
        }
    }
    None
}

fn worker_loop<'scope, 'env>(shared: &Arc<Shared<'scope, 'env>>, w: usize) {
    let scope = Scope {
        shared: Arc::clone(shared),
        worker: Some(w),
    };
    loop {
        let task = {
            let mut g = shared.state.lock().unwrap();
            loop {
                if let Some(t) = pop_task(&mut g, Some(w)) {
                    break t;
                }
                if g.shutdown {
                    return;
                }
                g = shared.work_cv.wait(g).unwrap();
            }
        };
        scope.run_task(task);
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Runs one queued task on this thread, routing a panic to the
    /// detached-panic slot unless the task handles it itself (batch
    /// subtasks catch their own panics before this sees them).
    fn run_task(&self, task: Task<'scope, 'env>) {
        let result = catch_unwind(AssertUnwindSafe(|| task(self)));
        if let Err(payload) = result {
            self.shared.record_panic(payload);
        }
        self.shared.complete_one();
    }

    /// Spawns a detached task. A panic in `f` is captured and re-raised
    /// when the owning [`Pool::scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.spawn_scoped(move |_| f());
    }

    /// Like [`Scope::spawn`], but the task receives the scope handle so it
    /// can spawn or `join_map` further work on the same pool.
    pub fn spawn_scoped<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        self.shared.push(self.worker, Box::new(f));
    }

    /// Fans `items` out as one subtask each, running `f(scope, index,
    /// item)` on pool workers, and returns the outputs **in input order**.
    ///
    /// The calling thread *helps*: while its batch is outstanding it
    /// executes queued tasks (its own deque, the injector, steals) instead
    /// of blocking, so `join_map` may be freely nested — a figure task can
    /// fan out its load grid, whose points fan out seeds — without
    /// deadlocking a fixed-size pool.
    ///
    /// If any subtask panics, the lowest-indexed payload wins nothing —
    /// the *first recorded* payload is re-raised here once the whole batch
    /// has drained, so a panic never leaks tasks that still borrow live
    /// state.
    ///
    /// `'static` bounds: subtasks may outlive the frame of the task that
    /// spawned them (only `'env` outlives the scope), so items, outputs,
    /// and the map function must own their data.
    pub fn join_map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(&Scope<'scope, 'env>, usize, I) -> O + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            slots: Mutex::new((0..n).map(|_| None).collect::<Vec<Option<O>>>()),
            left: Mutex::new(n),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let f = Arc::new(f);
        {
            let mut g = self.shared.state.lock().unwrap();
            for (i, item) in items.into_iter().enumerate() {
                let b = Arc::clone(&batch);
                let f = Arc::clone(&f);
                let task: Task<'scope, 'env> = Box::new(move |sc: &Scope<'scope, 'env>| {
                    let out = catch_unwind(AssertUnwindSafe(|| f(sc, i, item)));
                    match out {
                        Ok(o) => b.slots.lock().unwrap()[i] = Some(o),
                        Err(p) => {
                            let mut slot = b.panic.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(p);
                            }
                        }
                    }
                    let mut left = b.left.lock().unwrap();
                    *left -= 1;
                    if *left == 0 {
                        b.done_cv.notify_all();
                    }
                });
                match self.worker {
                    Some(w) => g.deques[w].push_back(task),
                    None => g.injector.push_back(task),
                }
                g.pending += 1;
            }
            drop(g);
            self.shared.work_cv.notify_all();
        }

        // Help until the batch drains: run anything runnable; only sleep
        // (on the batch condvar) when the queues are momentarily empty.
        loop {
            if *batch.left.lock().unwrap() == 0 {
                break;
            }
            let task = {
                let mut g = self.shared.state.lock().unwrap();
                pop_task(&mut g, self.worker)
            };
            match task {
                Some(t) => self.run_task(t),
                None => {
                    let left = batch.left.lock().unwrap();
                    if *left == 0 {
                        break;
                    }
                    // Batch subtasks may be running on other workers (or
                    // be spawned by them); wake on completion and rescan.
                    drop(batch.done_cv.wait(left).unwrap());
                }
            }
        }

        if let Some(p) = batch.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
        let mut slots = batch.slots.lock().unwrap();
        slots
            .iter_mut()
            .map(|s| s.take().expect("join_map: missing output without panic"))
            .collect()
    }

    /// Blocks the caller until every task on the scope has completed,
    /// helping with queued work while it waits.
    fn wait_idle(&self) {
        loop {
            enum Step<'scope, 'env: 'scope> {
                Run(Task<'scope, 'env>),
                Done,
                Wait,
            }
            let step = {
                let mut g = self.shared.state.lock().unwrap();
                if let Some(t) = pop_task(&mut g, self.worker) {
                    Step::Run(t)
                } else if g.pending == 0 {
                    Step::Done
                } else {
                    drop(self.shared.work_cv.wait(g).unwrap());
                    Step::Wait
                }
            };
            match step {
                Step::Run(t) => self.run_task(t),
                Step::Done => return,
                Step::Wait => continue,
            }
        }
    }
}

/// Flips `shutdown` when dropped — including during an unwind of the
/// caller closure — so `Pool::scope` can never hang its worker join.
struct ShutdownGuard<'scope, 'env: 'scope>(Arc<Shared<'scope, 'env>>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Join state for one `join_map` batch.
struct Batch<O> {
    /// Output slots, indexed by input position.
    slots: Mutex<Vec<Option<O>>>,
    /// Subtasks not yet completed.
    left: Mutex<usize>,
    /// Signalled when `left` reaches zero.
    done_cv: Condvar,
    /// First panic payload from a subtask of *this* batch.
    panic: Mutex<Option<Payload>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_map_returns_outputs_in_input_order() {
        let pool = Pool::new(4);
        let out = pool.scope(|s| {
            s.join_map((0..100u64).collect(), |_, i, x| {
                // Stagger completion so out-of-order finishes are likely.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                x * x
            })
        });
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn scope_tasks_can_borrow_env() {
        let data = vec![1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        Pool::new(2).scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move || {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_join_map_on_same_pool_completes() {
        // 2 workers, 4 outer tasks each fanning out 8 inner tasks: only
        // possible without deadlock because waiting tasks help execute.
        let pool = Pool::new(2);
        let out = pool.scope(|s| {
            s.join_map((0..4u64).collect(), |sc, _, outer| {
                let inner = sc.join_map((0..8u64).collect(), move |_, _, j| outer * 10 + j);
                inner.iter().sum::<u64>()
            })
        });
        let expect: Vec<u64> = (0..4).map(|o| (0..8).map(|j| o * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nested_scope_inside_task_completes() {
        // A task may open a whole nested Pool::scope of its own.
        let pool = Pool::new(2);
        let out = pool.scope(|s| {
            s.join_map(vec![10u64, 20], |_, _, base| {
                Pool::new(2)
                    .scope(|inner| inner.join_map(vec![1u64, 2, 3], move |_, _, x| base + x))
            })
        });
        assert_eq!(out, vec![vec![11, 12, 13], vec![21, 22, 23]]);
    }

    #[test]
    fn join_map_propagates_subtask_panic() {
        let pool = Pool::new(3);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.join_map((0..16u32).collect(), |_, _, x| {
                    if x == 11 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        }));
        let payload = res.expect_err("panic must propagate out of join_map");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 11"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn spawn_panic_propagates_at_scope_exit() {
        let pool = Pool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("detached boom"));
            });
        }));
        let payload = res.expect_err("detached panic must propagate at scope exit");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "detached boom");
    }

    #[test]
    fn panic_in_nested_join_map_reaches_outer_caller() {
        let pool = Pool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.join_map(vec![0u32, 1], |sc, _, outer| {
                    sc.join_map(vec![0u32, 1, 2], move |_, _, inner| {
                        if outer == 1 && inner == 2 {
                            panic!("deep boom");
                        }
                        inner
                    })
                })
            })
        }));
        assert!(res.is_err(), "nested panic must reach the outer caller");
    }

    #[test]
    fn empty_join_map_is_fine() {
        let out: Vec<u32> = Pool::new(2).scope(|s| s.join_map(Vec::<u32>::new(), |_, _, x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn default_jobs_honors_env_override() {
        // Can't set env safely across parallel tests; just sanity-check
        // the fallback is at least 1.
        assert!(default_jobs() >= 1);
    }
}
