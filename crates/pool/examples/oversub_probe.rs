//! Diagnostic probe: user-time inflation of *oversubscribed* pools on
//! this machine, by workload class. Run:
//! `cargo run --release -p pool --example oversub_probe`.
//!
//! This is the experiment that located the HC_JOBS=4 suite regression on
//! a single-core container: pure ALU work shows ~0 % inflation when four
//! workers share one core (timeslicing is free), memory-streaming over
//! private multi-MB buffers ~4 % (cache interference), and
//! allocator-heavy work ~10 % with default glibc arenas — and *worse*
//! (~23 %) under `MALLOC_ARENA_MAX=1`, where the threads serialize on one
//! arena lock. Simulator worlds are allocator-heavy, which is why
//! `Pool::new` caps executors at the core count; this probe uses
//! `Pool::exact` to deliberately reproduce the oversubscription that cap
//! prevents.

use pool::Pool;
use std::time::Instant;

fn cpu_times() -> (f64, f64) {
    let s = std::fs::read_to_string("/proc/self/stat").unwrap();
    // fields 14/15 (1-based) are utime/stime in clock ticks; the comm field
    // can contain spaces, so split after the closing paren.
    let after = s.rsplit_once(')').unwrap().1;
    let f: Vec<&str> = after.split_whitespace().collect();
    let tck = 100.0;
    (
        f[11].parse::<f64>().unwrap() / tck,
        f[12].parse::<f64>().unwrap() / tck,
    )
}

fn run(label: &str, workers: usize, n: usize, f: impl Fn() -> u64 + Send + Sync + 'static) {
    let (u0, s0) = cpu_times();
    let t = Instant::now();
    let out =
        Pool::exact(workers).scope(|s| s.join_map((0..n).collect::<Vec<_>>(), move |_, _, _| f()));
    let wall = t.elapsed().as_secs_f64();
    let (u1, s1) = cpu_times();
    let sink: u64 = out.iter().sum();
    println!(
        "{label:20} workers={workers} wall={wall:7.3}s user={:7.3}s sys={:6.3}s (sink {sink})",
        u1 - u0,
        s1 - s0
    );
}

fn main() {
    // ALU-bound: no memory traffic beyond registers.
    let alu = || {
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..300_000_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        x
    };
    // Memory-streaming over a private 8 MB buffer (larger than L2).
    let mem = || {
        let mut v = vec![1u64; 1 << 20];
        let mut acc = 0u64;
        for _ in 0..120 {
            for (i, x) in v.iter_mut().enumerate() {
                *x = x.wrapping_add(i as u64);
                acc = acc.wrapping_add(*x);
            }
        }
        acc
    };
    // Allocator-heavy: many short-lived heterogeneous allocations.
    let alloc = || {
        let mut acc = 0u64;
        for r in 0..600u64 {
            let mut keep: Vec<Vec<u8>> = Vec::new();
            for i in 0..4_000u64 {
                let sz = 16 + ((i * 2654435761 + r) % 2048) as usize;
                keep.push(vec![(i & 0xff) as u8; sz]);
            }
            acc = acc.wrapping_add(keep.iter().map(|k| k[0] as u64).sum::<u64>());
        }
        acc
    };
    for workers in [1usize, 4] {
        run("alu", workers, 8, alu);
    }
    for workers in [1usize, 4] {
        run("mem-8MB", workers, 8, mem);
    }
    for workers in [1usize, 4] {
        run("alloc-heavy", workers, 8, alloc);
    }
}
