//! Cluster-level tests of the Raft implementation over an ideal in-memory
//! bus with controllable delivery: elections, replication, commit safety,
//! log repair, partitions, and leader failover.

use std::collections::VecDeque;

use raft::{Action, Config, LogIndex, Message, RaftId, RaftNode, Role};

/// A deterministic in-memory cluster harness. Messages are delivered with a
/// fixed latency unless a link is cut; time advances in fixed steps.
struct Harness {
    nodes: Vec<RaftNode<u64>>,
    alive: Vec<bool>,
    /// (deliver_at, from, to, msg)
    inflight: VecDeque<(u64, RaftId, RaftId, Message<u64>)>,
    /// cut[a][b] == true means a → b messages are dropped.
    cut: Vec<Vec<bool>>,
    now: u64,
    latency: u64,
    committed: Vec<Vec<u64>>, // applied commands per node, in order
}

impl Harness {
    fn new(n: usize) -> Harness {
        let members: Vec<RaftId> = (0..n as RaftId).collect();
        let nodes = members
            .iter()
            .map(|&id| {
                let mut cfg = Config::new(id, members.clone());
                // Distinct, spread-out seeds give clean single-candidate
                // elections in most tests.
                cfg.seed = 1000 + id as u64 * 7;
                RaftNode::new(cfg, 0)
            })
            .collect();
        Harness {
            nodes,
            alive: vec![true; n],
            inflight: VecDeque::new(),
            cut: vec![vec![false; n]; n],
            now: 0,
            latency: 10_000, // 10µs
            committed: vec![Vec::new(); n],
        }
    }

    fn handle(&mut self, id: RaftId, actions: Vec<Action<u64>>) {
        for a in actions {
            match a {
                Action::Send { to, msg }
                    if self.alive[id as usize] && !self.cut[id as usize][to as usize] =>
                {
                    self.inflight
                        .push_back((self.now + self.latency, id, to, msg));
                }
                Action::Commit { upto } => {
                    // Apply newly committed entries in order.
                    let node = &self.nodes[id as usize];
                    let from = self.committed[id as usize].len() as LogIndex + 1;
                    for e in node.log().range(from, upto) {
                        self.committed[id as usize].push(e.cmd);
                    }
                    let applied = self.committed[id as usize].len() as LogIndex;
                    self.nodes[id as usize].set_applied(applied);
                }
                _ => {}
            }
        }
    }

    /// Advances time by `dt`, ticking every node and delivering due
    /// messages.
    fn step(&mut self, dt: u64) {
        self.now += dt;
        for id in 0..self.nodes.len() {
            if !self.alive[id] {
                continue;
            }
            let acts = self.nodes[id].tick(self.now);
            self.handle(id as RaftId, acts);
        }
        let mut due = Vec::new();
        self.inflight.retain(|m| {
            if m.0 <= self.now {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        for (_, from, to, msg) in due {
            if !self.alive[to as usize] {
                continue;
            }
            let acts = self.nodes[to as usize].step(from, msg, self.now);
            self.handle(to, acts);
        }
    }

    /// Runs for `total` ns in 0.5 ms steps.
    fn run(&mut self, total: u64) {
        let step = 500_000;
        let mut t = 0;
        while t < total {
            self.step(step);
            t += step;
        }
    }

    fn leader(&self) -> Option<RaftId> {
        let leaders: Vec<RaftId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| self.alive[*i] && n.is_leader())
            .map(|(i, _)| i as RaftId)
            .collect();
        match leaders.as_slice() {
            [l] => Some(*l),
            [] => None,
            many => {
                // Multiple leaders may coexist transiently across terms; the
                // highest term is the real one.
                many.iter()
                    .copied()
                    .max_by_key(|&l| self.nodes[l as usize].term())
            }
        }
    }

    fn propose(&mut self, cmd: u64) -> Option<LogIndex> {
        let l = self.leader()?;
        let idx = self.nodes[l as usize].propose(cmd).ok()?;
        let acts = self.nodes[l as usize].pump(self.now);
        self.handle(l, acts);
        Some(idx)
    }
}

#[test]
fn elects_exactly_one_leader() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    let l = h.leader().expect("a leader");
    let term = h.nodes[l as usize].term();
    let leaders = h
        .nodes
        .iter()
        .filter(|n| n.is_leader() && n.term() == term)
        .count();
    assert_eq!(leaders, 1);
    // Followers agree on who leads.
    for n in &h.nodes {
        if !n.is_leader() {
            assert_eq!(n.leader_hint(), Some(l));
            assert_eq!(n.role(), Role::Follower);
        }
    }
}

#[test]
fn replicates_and_commits_everywhere() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    for i in 0..20 {
        h.propose(i).expect("leader accepts");
        h.run(2_000_000);
    }
    h.run(20_000_000);
    let expect: Vec<u64> = (0..20).collect();
    for (i, c) in h.committed.iter().enumerate() {
        assert_eq!(c, &expect, "node {i} applied sequence");
    }
}

#[test]
fn five_node_cluster_commits() {
    let mut h = Harness::new(5);
    h.run(100_000_000);
    for i in 0..10 {
        h.propose(i * 3).unwrap();
        h.run(2_000_000);
    }
    h.run(20_000_000);
    for c in &h.committed {
        assert_eq!(c.len(), 10);
    }
}

#[test]
fn leader_failover_preserves_committed_prefix() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    for i in 0..5 {
        h.propose(i).unwrap();
        h.run(2_000_000);
    }
    h.run(10_000_000);
    let old = h.leader().unwrap();
    let committed_before = h.committed[old as usize].clone();
    assert_eq!(committed_before.len(), 5);

    h.alive[old as usize] = false;
    h.run(200_000_000);
    let new = h.leader().expect("new leader elected");
    assert_ne!(new, old);

    for i in 5..10 {
        h.propose(i).unwrap();
        h.run(2_000_000);
    }
    h.run(20_000_000);
    for (i, c) in h.committed.iter().enumerate() {
        if i == old as usize {
            continue;
        }
        assert_eq!(c[..5], committed_before[..], "node {i} prefix");
        assert_eq!(c.len(), 10, "node {i} caught up");
    }
}

#[test]
fn minority_partition_cannot_commit() {
    let mut h = Harness::new(5);
    h.run(100_000_000);
    let l = h.leader().unwrap();
    // Partition the leader together with exactly one follower.
    let buddy = (0..5u32).find(|&x| x != l).unwrap();
    for a in 0..5u32 {
        for b in 0..5u32 {
            let a_in = a == l || a == buddy;
            let b_in = b == l || b == buddy;
            if a_in != b_in {
                h.cut[a as usize][b as usize] = true;
            }
        }
    }
    // Old leader accepts a proposal but can never commit it.
    let before = h.committed[l as usize].len();
    h.nodes[l as usize].propose(99).unwrap();
    let acts = h.nodes[l as usize].pump(h.now);
    h.handle(l, acts);
    h.run(300_000_000);
    assert_eq!(
        h.committed[l as usize].len(),
        before,
        "no quorum, no commit"
    );
    // The majority side elected a new leader that can commit.
    let majority_leader = h.leader().expect("majority leader");
    assert!(majority_leader != l && majority_leader != buddy);
    let idx = h.propose(7).unwrap();
    h.run(20_000_000);
    assert!(h.nodes[majority_leader as usize].commit_index() >= idx);
}

#[test]
fn healed_partition_repairs_divergent_logs() {
    let mut h = Harness::new(5);
    h.run(100_000_000);
    let l = h.leader().unwrap();
    let buddy = (0..5u32).find(|&x| x != l).unwrap();
    for a in 0..5u32 {
        for b in 0..5u32 {
            let a_in = a == l || a == buddy;
            let b_in = b == l || b == buddy;
            if a_in != b_in {
                h.cut[a as usize][b as usize] = true;
            }
        }
    }
    // Diverge: old leader appends uncommittable entries.
    h.nodes[l as usize].propose(666).unwrap();
    h.nodes[l as usize].propose(667).unwrap();
    let acts = h.nodes[l as usize].pump(h.now);
    h.handle(l, acts);
    h.run(300_000_000);
    // Majority commits different entries.
    h.propose(1).unwrap();
    h.run(10_000_000);
    h.propose(2).unwrap();
    h.run(10_000_000);
    // Heal.
    for a in 0..5 {
        for b in 0..5 {
            h.cut[a][b] = false;
        }
    }
    h.run(300_000_000);
    for i in 0..5 {
        assert_eq!(h.committed[i], vec![1, 2], "node {i} repaired");
    }
}

#[test]
fn ceiling_withholds_entries_until_raised() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    let l = h.leader().unwrap() as usize;
    let base = h.nodes[l].log().last_index();
    h.nodes[l].set_ceiling(base); // freeze announcements
    h.nodes[l].propose(11).unwrap();
    h.nodes[l].propose(12).unwrap();
    let acts = h.nodes[l].pump(h.now);
    h.handle(l as RaftId, acts);
    h.run(50_000_000);
    assert_eq!(
        h.nodes[l].commit_index(),
        base,
        "entries above the ceiling never commit"
    );
    for (i, n) in h.nodes.iter().enumerate() {
        if i != l {
            assert_eq!(n.log().last_index(), base, "follower {i} saw nothing");
        }
    }
    // Raise the ceiling: both entries flow and commit.
    h.nodes[l].set_ceiling(base + 2);
    let acts = h.nodes[l].pump(h.now);
    h.handle(l as RaftId, acts);
    h.run(50_000_000);
    assert_eq!(h.nodes[l].commit_index(), base + 2);
    let tail = |v: &Vec<u64>| v.iter().rev().take(2).copied().collect::<Vec<_>>();
    for c in &h.committed {
        assert_eq!(tail(c), vec![12, 11]);
    }
}

#[test]
fn lossy_network_still_makes_progress() {
    // Drop every third message by cutting links intermittently.
    let mut h = Harness::new(3);
    h.run(100_000_000);
    for (k, i) in (0..30u64).enumerate() {
        // Toggle one random-ish link each round.
        let a = k % 3;
        let b = (k + 1) % 3;
        h.cut[a][b] = k.is_multiple_of(3);
        if h.propose(i).is_some() {
            h.run(3_000_000);
        } else {
            h.run(30_000_000);
        }
    }
    for a in 0..3 {
        for b in 0..3 {
            h.cut[a][b] = false;
        }
    }
    h.run(100_000_000);
    // All alive nodes converge to identical applied sequences.
    assert!(h.committed[0].len() >= 25);
    assert_eq!(h.committed[0], h.committed[1]);
    assert_eq!(h.committed[1], h.committed[2]);
}

#[test]
fn applied_index_propagates_to_leader() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    for i in 0..5 {
        h.propose(i).unwrap();
        h.run(2_000_000);
    }
    h.run(30_000_000);
    let l = h.leader().unwrap() as usize;
    let last = h.nodes[l].log().last_index();
    for peer in 0..3u32 {
        if peer as usize == l {
            continue;
        }
        let p = h.nodes[l].progress(peer).expect("progress tracked");
        assert_eq!(p.matched, last, "peer {peer} matched");
        assert_eq!(p.applied, last, "peer {peer} applied reported");
    }
}

#[test]
fn stale_term_messages_are_rejected() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    let l = h.leader().unwrap();
    let term = h.nodes[l as usize].term();
    // A stale AppendEntries from a deposed "leader" at term-1.
    let stale: Message<u64> = Message::AppendEntries {
        term: term - 1,
        leader: 99,
        prev_log_index: 0,
        prev_log_term: 0,
        entries: vec![],
        leader_commit: 0,
    };
    let follower = (0..3u32).find(|&x| x != l).unwrap();
    let acts = h.nodes[follower as usize].step(99, stale, h.now);
    let mut rejected = false;
    for a in acts {
        if let Action::Send {
            msg: Message::AppendEntriesReply {
                success, term: t, ..
            },
            ..
        } = a
        {
            assert!(!success);
            assert_eq!(t, term);
            rejected = true;
        }
    }
    assert!(rejected);
    assert_eq!(h.nodes[follower as usize].term(), term, "term unchanged");
}

#[test]
fn replication_pipeline_to_a_silent_follower_is_bounded() {
    let mut h = Harness::new(3);
    h.run(100_000_000);
    let l = h.leader().expect("a leader") as usize;
    let f = (0..3).find(|&i| i != l).unwrap();
    let base = h.nodes[l].progress(f as RaftId).unwrap().matched;

    // Silence the follower's replies (it still receives everything), then
    // offer far more than one pipeline window of new entries.
    h.cut[f][l] = true;
    for c in 0..1_000 {
        h.propose(c);
        h.step(10_000);
    }
    h.run(2_000_000); // drain in-flight acks from the responsive follower

    // The leader must not stream past max_inflight unacked entries; the
    // follower's log shows exactly what was put on the wire for it.
    // (Heartbeat retransmits resend the same window, not fresh entries.)
    let max_inflight = 256; // Config::new default
    let shipped = h.nodes[f].log().last_index();
    assert!(
        h.nodes[l].log().last_index() >= 1_000,
        "leader kept appending"
    );
    assert!(
        shipped <= base + max_inflight,
        "silent follower was streamed {} entries past its last ack (cap {})",
        shipped - base,
        max_inflight
    );
    assert!(
        h.nodes[l].commit_index() >= 1_000,
        "the responsive majority still commits"
    );

    // Once replies flow again, retransmit-from-matched plus the reopened
    // window catch the follower all the way up.
    h.cut[f][l] = false;
    h.run(50_000_000);
    assert_eq!(
        h.nodes[f].log().last_index(),
        h.nodes[l].log().last_index(),
        "healed follower catches up fully"
    );
}
