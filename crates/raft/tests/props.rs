//! Property-based tests of Raft's safety invariants under adversarial
//! message schedules: randomized delivery delays, drops, duplications, and
//! node crashes must never violate Election Safety, Log Matching, or the
//! State Machine Safety property (committed prefixes never diverge).

use std::collections::BTreeMap;

use proptest::prelude::*;
use raft::{Action, Config, LogIndex, Message, RaftId, RaftNode, Term};

/// One scheduled network event.
#[derive(Clone, Debug)]
struct NetEvent {
    deliver_at: u64,
    from: RaftId,
    to: RaftId,
    msg: Message<u64>,
}

/// A deterministic chaos harness: messages are delayed by schedule-driven
/// amounts, dropped or duplicated by schedule-driven coin flips.
struct Chaos {
    nodes: Vec<RaftNode<u64>>,
    alive: Vec<bool>,
    inflight: Vec<NetEvent>,
    now: u64,
    /// Per-term leaders observed (for Election Safety).
    leaders_by_term: BTreeMap<Term, Vec<RaftId>>,
    /// Applied command sequences (for State Machine Safety).
    applied: Vec<Vec<(LogIndex, u64)>>,
    /// Schedule randomness, consumed round-robin.
    dice: Vec<u8>,
    dice_pos: usize,
}

impl Chaos {
    fn new(n: usize, dice: Vec<u8>) -> Chaos {
        let members: Vec<RaftId> = (0..n as RaftId).collect();
        let nodes = members
            .iter()
            .map(|&id| {
                let mut cfg = Config::new(id, members.clone());
                cfg.seed = 7_777 + id as u64;
                RaftNode::new(cfg, 0)
            })
            .collect();
        Chaos {
            nodes,
            alive: vec![true; n],
            inflight: Vec::new(),
            now: 0,
            leaders_by_term: BTreeMap::new(),
            applied: vec![Vec::new(); n],
            dice,
            dice_pos: 0,
        }
    }

    fn roll(&mut self) -> u8 {
        if self.dice.is_empty() {
            return 0;
        }
        let v = self.dice[self.dice_pos % self.dice.len()];
        self.dice_pos += 1;
        v
    }

    fn handle(&mut self, id: usize, actions: Vec<Action<u64>>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    let roll = self.roll();
                    if roll < 40 {
                        continue; // ~16% drop
                    }
                    let delay = 5_000 + (roll as u64 % 7) * 20_000; // 5..125µs
                    let ev = NetEvent {
                        deliver_at: self.now + delay,
                        from: id as RaftId,
                        to,
                        msg,
                    };
                    if roll > 230 {
                        self.inflight.push(ev.clone()); // ~10% duplicate
                    }
                    self.inflight.push(ev);
                }
                Action::BecameLeader { term } => {
                    self.leaders_by_term
                        .entry(term)
                        .or_default()
                        .push(id as RaftId);
                }
                Action::Commit { upto } => {
                    let from = self.applied[id].last().map(|(i, _)| i + 1).unwrap_or(1);
                    let new: Vec<(LogIndex, u64)> = self.nodes[id]
                        .log()
                        .range(from, upto)
                        .iter()
                        .map(|e| (e.index, e.cmd))
                        .collect();
                    self.applied[id].extend(new);
                    let last = upto.min(self.nodes[id].log().last_index());
                    self.nodes[id].set_applied(last);
                }
                _ => {}
            }
        }
    }

    fn step(&mut self, dt: u64) {
        self.now += dt;
        for id in 0..self.nodes.len() {
            if !self.alive[id] {
                continue;
            }
            let acts = self.nodes[id].tick(self.now);
            self.handle(id, acts);
        }
        let now = self.now;
        let mut due = Vec::new();
        self.inflight.retain(|e| {
            if e.deliver_at <= now {
                due.push(e.clone());
                false
            } else {
                true
            }
        });
        for e in due {
            if !self.alive[e.to as usize] {
                continue;
            }
            let acts = self.nodes[e.to as usize].step(e.from, e.msg, self.now);
            self.handle(e.to as usize, acts);
        }
    }

    fn try_propose(&mut self, cmd: u64) {
        for id in 0..self.nodes.len() {
            if self.alive[id] && self.nodes[id].is_leader() {
                if self.nodes[id].propose(cmd).is_ok() {
                    let acts = self.nodes[id].pump(self.now);
                    self.handle(id, acts);
                }
                return;
            }
        }
    }
}

fn check_invariants(c: &Chaos) -> Result<(), TestCaseError> {
    // Election Safety: at most one leader per term.
    for (term, leaders) in &c.leaders_by_term {
        prop_assert!(
            leaders.len() <= 1,
            "term {term} had multiple leaders: {leaders:?}"
        );
    }
    // State Machine Safety: applied sequences are prefixes of each other.
    for a in &c.applied {
        for b in &c.applied {
            let common = a.len().min(b.len());
            prop_assert_eq!(&a[..common], &b[..common], "applied prefixes diverged");
        }
    }
    // Log Matching: same (index, term) ⇒ same command and same prefix.
    for i in 0..c.nodes.len() {
        for j in (i + 1)..c.nodes.len() {
            let (a, b) = (c.nodes[i].log(), c.nodes[j].log());
            let last = a.last_index().min(b.last_index());
            // Find the highest common (index, term); below it, entries must
            // be identical.
            let mut hi = last;
            while hi > 0 && a.term_at(hi) != b.term_at(hi) {
                hi -= 1;
            }
            for idx in 1..=hi {
                if a.term_at(idx) == b.term_at(idx) {
                    prop_assert_eq!(
                        a.get(idx).map(|e| e.cmd),
                        b.get(idx).map(|e| e.cmd),
                        "log matching violated at {}",
                        idx
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Safety under a lossy, duplicating, delaying network.
    #[test]
    fn safety_under_chaotic_network(
        n in prop_oneof![Just(3usize), Just(5usize)],
        dice in proptest::collection::vec(any::<u8>(), 64..512),
        proposals in 5usize..40,
    ) {
        let mut c = Chaos::new(n, dice);
        // Let a leader emerge.
        for _ in 0..100 {
            c.step(1_000_000);
        }
        for p in 0..proposals {
            c.try_propose(p as u64);
            for _ in 0..4 {
                c.step(1_000_000);
            }
        }
        for _ in 0..200 {
            c.step(1_000_000);
        }
        check_invariants(&c)?;
    }

    /// Safety across a randomly timed leader crash.
    #[test]
    fn safety_across_leader_crash(
        dice in proptest::collection::vec(any::<u8>(), 64..512),
        crash_round in 5usize..25,
        proposals in 10usize..30,
    ) {
        let mut c = Chaos::new(3, dice);
        for _ in 0..100 {
            c.step(1_000_000);
        }
        for p in 0..proposals {
            c.try_propose(p as u64);
            for _ in 0..4 {
                c.step(1_000_000);
            }
            if p == crash_round % proposals {
                if let Some(l) = (0..3).find(|&i| c.nodes[i].is_leader()) {
                    c.alive[l] = false;
                }
            }
        }
        for _ in 0..400 {
            c.step(1_000_000);
        }
        check_invariants(&c)?;
        // Liveness: the two survivors still commit (quorum of 3 = 2).
        let max_applied = c.applied.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert!(max_applied > 0, "nothing ever committed");
    }
}
