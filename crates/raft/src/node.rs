//! The Raft state machine: elections, replication, and commit.
//!
//! [`RaftNode`] is sans-io and deterministic. Drivers feed it messages
//! ([`RaftNode::step`]) and clock readings ([`RaftNode::tick`]), and it
//! returns [`Action`]s — messages to transmit and state transitions to act
//! on. It never blocks, sleeps, or reads a clock.
//!
//! The implementation follows the Raft paper (Ongaro & Ousterhout, ATC '14)
//! with the standard industrial refinements: conflict-hint fast backtracking
//! for `next_index`, pipelined (optimistically advanced) replication, and
//! batched AppendEntries. Two deliberate extension points exist for
//! HovercRaft, neither of which alters the consensus core (paper §5):
//!
//! * a **replication ceiling** ([`RaftNode::set_ceiling`]): the leader never
//!   sends entries above the ceiling, which is how HovercRaft withholds
//!   entries until a designated replier has been stamped into them and the
//!   bounded-queue invariant holds (§3.4). A ceiling of `u64::MAX` (the
//!   default) yields vanilla Raft.
//! * the AppendEntries **reply carries `applied_index`** (§6.2), which
//!   vanilla Raft ignores.

use fxhash::FxHashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::Config;
use crate::log::{Entry, RaftLog};
use crate::message::Message;
use crate::progress::Progress;
use crate::types::{LogIndex, RaftId, Role, Term};

/// An effect the driver must carry out.
#[derive(Clone, Debug)]
pub enum Action<C> {
    /// Transmit `msg` to peer `to`.
    Send {
        /// Destination peer.
        to: RaftId,
        /// The message.
        msg: Message<C>,
    },
    /// The commit index advanced; entries up to `upto` are now durable and
    /// may be applied in order.
    Commit {
        /// New commit index.
        upto: LogIndex,
    },
    /// This node won an election.
    BecameLeader {
        /// The term it leads.
        term: Term,
    },
    /// This node (re)entered the follower role.
    BecameFollower {
        /// Its current term.
        term: Term,
    },
    /// Durable state changed; a persistent deployment must sync this before
    /// transmitting any message produced by the same call.
    SaveHardState {
        /// Current term.
        term: Term,
        /// Vote cast in `term`, if any.
        voted_for: Option<RaftId>,
    },
    /// Leader-only: peer `to` is behind the log's compaction horizon, so no
    /// AppendEntries can be built for it. The driver must stream the current
    /// snapshot to `to` (chunked InstallSnapshot) and report completion via
    /// [`RaftNode::on_snapshot_installed`]. Emitted at most once per
    /// transfer (deduped by `Progress::pending_snapshot`).
    NeedsSnapshot {
        /// The follower that needs a snapshot.
        to: RaftId,
    },
}

/// Error returned by [`RaftNode::propose`] on a non-leader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotLeader {
    /// Best-known current leader, if any.
    pub hint: Option<RaftId>,
}

impl std::fmt::Display for NotLeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not the leader (hint: {:?})", self.hint)
    }
}
impl std::error::Error for NotLeader {}

/// A deterministic, sans-io Raft node.
///
/// `Clone` supports explicit-state model checking: the `mc` crate forks a
/// node per explored branch. All state (including the seeded generator) is
/// plain data, so a clone behaves bit-identically to the original.
#[derive(Clone)]
pub struct RaftNode<C> {
    cfg: Config,
    log: RaftLog<C>,
    role: Role,
    term: Term,
    voted_for: Option<RaftId>,
    leader_id: Option<RaftId>,
    commit: LogIndex,
    applied: LogIndex,
    progress: FxHashMap<RaftId, Progress>,
    votes: usize,
    voters: Vec<RaftId>,
    election_deadline: u64,
    heartbeat_due: u64,
    ceiling: LogIndex,
    announced: LogIndex,
    /// When a valid AppendEntries from the current leader last arrived;
    /// Pre-Vote leader stickiness refuses probes while this is fresh.
    last_leader_contact: u64,
    /// `cfg.peers()` precomputed: membership is fixed for a node's
    /// lifetime, and the replication paths walk this every pump/heartbeat.
    peer_ids: Vec<RaftId>,
    rng: SmallRng,
}

impl<C: Clone + std::fmt::Debug> RaftNode<C> {
    /// Creates a node at term 0 with an empty log. `now` seeds the first
    /// election deadline.
    pub fn new(cfg: Config, now: u64) -> Self {
        cfg.validate();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Width-1 jitter windows skip the draw (see reset_election_deadline).
        let election_deadline = now
            + if cfg.election_timeout_max - cfg.election_timeout_min == 1 {
                cfg.election_timeout_min
            } else {
                rng.gen_range(cfg.election_timeout_min..cfg.election_timeout_max)
            };
        let peer_ids: Vec<RaftId> = cfg.peers().collect();
        RaftNode {
            cfg,
            log: RaftLog::new(),
            role: Role::Follower,
            term: 0,
            voted_for: None,
            leader_id: None,
            commit: 0,
            applied: 0,
            progress: FxHashMap::default(),
            votes: 0,
            voters: Vec::new(),
            election_deadline,
            heartbeat_due: 0,
            ceiling: LogIndex::MAX,
            announced: 0,
            last_leader_contact: 0,
            peer_ids,
            rng,
        }
    }

    /// Rebuilds a node from durable hard state after a crash–restart: the
    /// `term` and `voted_for` last persisted via [`Action::SaveHardState`]
    /// and the persisted log entries. All volatile state (commit, applied,
    /// leadership, progress) restarts from zero, as Raft prescribes — the
    /// commit index is re-learned from the next leader contact.
    /// `snap_index`/`snap_term` describe the durable snapshot boundary the
    /// entries sit on top of (0/0 when no snapshot was taken): the log
    /// restarts at `snap_index + 1`, and — unlike the volatile commit index,
    /// which is re-learned from the next leader — both `commit` and
    /// `applied` restart *at* `snap_index`, because the snapshot embodies
    /// durably applied state that can never be re-derived from entries.
    pub fn restore(
        cfg: Config,
        now: u64,
        term: Term,
        voted_for: Option<RaftId>,
        snap_index: LogIndex,
        snap_term: Term,
        entries: Vec<Entry<C>>,
    ) -> Self {
        let mut node = RaftNode::new(cfg, now);
        node.term = term;
        node.voted_for = voted_for;
        if snap_index > 0 {
            node.log.reset_to(snap_index, snap_term);
            node.commit = snap_index;
            node.applied = snap_index;
        }
        for e in entries {
            node.log.push(e);
        }
        node
    }

    // ---- accessors --------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> RaftId {
        self.cfg.id
    }
    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }
    /// True if this node is the leader of its current term.
    pub fn is_leader(&self) -> bool {
        self.role.is_leader()
    }
    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }
    /// Best-known leader, if any.
    pub fn leader_hint(&self) -> Option<RaftId> {
        self.leader_id
    }
    /// The vote recorded in the current term, if any (durable state).
    pub fn voted_for(&self) -> Option<RaftId> {
        self.voted_for
    }
    /// Current commit index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit
    }
    /// Index the driver has reported applied via [`RaftNode::set_applied`].
    pub fn applied_index(&self) -> LogIndex {
        self.applied
    }
    /// Borrow the log.
    pub fn log(&self) -> &RaftLog<C> {
        &self.log
    }
    /// Mutably borrow the log. HovercRaft stamps replier fields through
    /// this; entries at or below the announced index must not be modified.
    pub fn log_mut(&mut self) -> &mut RaftLog<C> {
        &mut self.log
    }
    /// Leader-side progress for `peer` (None on non-leaders).
    pub fn progress(&self, peer: RaftId) -> Option<&Progress> {
        self.progress.get(&peer)
    }
    /// Highest index ever shipped in an AppendEntries this term.
    pub fn announced_index(&self) -> LogIndex {
        self.announced
    }
    /// Current replication ceiling.
    pub fn ceiling(&self) -> LogIndex {
        self.ceiling
    }
    /// The static configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Feeds the node's full behavioural state into `h` for model-checker
    /// fingerprinting (see [`crate::HashState`]). `now` is the owning
    /// driver's logical clock: deadlines hash as time-to-fire and contact
    /// marks as age, so states that differ only by a uniform clock shift
    /// coincide. The generator words are included — the seeded stream
    /// decides tie-breaks, so it is part of the behavioural state.
    pub fn hash_state(
        &self,
        now: u64,
        h: &mut dyn std::hash::Hasher,
        rename: &dyn Fn(RaftId) -> RaftId,
    ) where
        C: crate::HashState,
    {
        fn opt_id(
            h: &mut dyn std::hash::Hasher,
            rename: &dyn Fn(RaftId) -> RaftId,
            v: Option<RaftId>,
        ) {
            match v {
                Some(id) => {
                    h.write_u8(1);
                    h.write_u32(rename(id));
                }
                None => h.write_u8(0),
            }
        }
        h.write_u32(rename(self.cfg.id));
        h.write_u8(match self.role {
            Role::Follower => 0,
            Role::PreCandidate => 1,
            Role::Candidate => 2,
            Role::Leader => 3,
        });
        h.write_u64(self.term);
        opt_id(h, rename, self.voted_for);
        opt_id(h, rename, self.leader_id);
        h.write_u64(self.commit);
        h.write_u64(self.applied);
        h.write_u64(self.ceiling);
        h.write_u64(self.announced);
        h.write_u64(self.log.snapshot_index());
        h.write_u64(self.log.snapshot_term());
        h.write_usize(self.log.len());
        for e in self
            .log
            .range(self.log.first_index(), self.log.last_index())
        {
            use crate::HashState as _;
            e.hash_state(h, rename);
        }
        let mut prog: Vec<(RaftId, Progress)> = self
            .progress
            .iter()
            .map(|(&id, p)| (rename(id), *p))
            .collect();
        prog.sort_by_key(|&(id, _)| id);
        h.write_usize(prog.len());
        for (id, p) in prog {
            h.write_u32(id);
            h.write_u64(p.next);
            h.write_u64(p.matched);
            h.write_u64(p.applied);
            h.write_u64(p.commit_told);
            h.write_u64(now.saturating_sub(p.last_heard));
            h.write_u8(p.pending_snapshot as u8);
        }
        h.write_usize(self.votes);
        let mut voters: Vec<RaftId> = self.voters.iter().map(|&v| rename(v)).collect();
        voters.sort_unstable();
        for v in voters {
            h.write_u32(v);
        }
        h.write_u64(self.election_deadline.saturating_sub(now));
        h.write_u64(self.heartbeat_due.saturating_sub(now));
        h.write_u64(now.saturating_sub(self.last_leader_contact));
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
    }

    /// Sets the replication ceiling: the leader will not ship entries above
    /// `idx`. Monotone per term; HovercRaft advances it as repliers are
    /// assigned (§3.4).
    pub fn set_ceiling(&mut self, idx: LogIndex) {
        self.ceiling = idx;
    }

    /// Driver feedback: entries up to `idx` have been applied to the local
    /// state machine. Reported to the leader in AppendEntries replies.
    pub fn set_applied(&mut self, idx: LogIndex) {
        debug_assert!(idx <= self.commit);
        self.applied = self.applied.max(idx);
    }

    /// Compacts the log up to `idx` after the driver has taken a snapshot
    /// covering it. Only applied entries may be compacted (the snapshot must
    /// actually contain their effects), so `idx` is clamped to the applied
    /// index.
    pub fn compact_to(&mut self, idx: LogIndex) {
        debug_assert!(idx <= self.applied, "compacting unapplied entries");
        self.log.compact_to(idx.min(self.applied));
    }

    /// Follower side of InstallSnapshot: the driver has fully received and
    /// restored a snapshot at (`index`, `term`). If the local log already
    /// holds a matching entry at `index` the retained suffix is kept (the
    /// log is merely compacted); otherwise the whole log is replaced by the
    /// snapshot boundary. Commit and applied jump to at least `index`. A
    /// stale snapshot (at or below the local *applied* index) is ignored —
    /// the guard is on applied, not commit, because a follower can hold
    /// committed-but-unapplied entries whose bodies were compacted away
    /// everywhere; the snapshot is exactly what unsticks it.
    pub fn install_snapshot(&mut self, index: LogIndex, term: Term) -> Vec<Action<C>> {
        let mut out = Vec::new();
        if index <= self.applied || index <= self.log.snapshot_index() {
            return out;
        }
        if self.log.term_at(index) == Some(term) {
            self.log.compact_to(index);
        } else {
            // A term mismatch below our commit index is impossible (Raft
            // safety: committed entries never diverge), so replacing the
            // log with the snapshot boundary is always safe here.
            self.log.reset_to(index, term);
        }
        self.applied = index;
        if index > self.commit {
            self.commit = index;
            out.push(Action::Commit { upto: index });
        }
        out
    }

    /// Leader side of InstallSnapshot completion: follower `peer` reported
    /// a fully installed snapshot at `index`. Progress jumps to `index`,
    /// the pending-snapshot park is lifted, and replication resumes
    /// immediately from `index + 1`.
    pub fn on_snapshot_installed(
        &mut self,
        peer: RaftId,
        index: LogIndex,
        now: u64,
    ) -> Vec<Action<C>> {
        let mut out = Vec::new();
        if !self.is_leader() {
            return out;
        }
        let Some(p) = self.progress.get_mut(&peer) else {
            return out;
        };
        p.pending_snapshot = false;
        p.last_heard = now;
        p.on_success(index, index);
        self.maybe_commit(&mut out);
        let target = self.log.last_index().min(self.ceiling);
        self.send_append(peer, target, true, &mut out);
        out
    }

    /// Driver hook: a non-AppendEntries message that only the current
    /// leader sends (e.g. a snapshot chunk) arrived, carrying `term` and
    /// the sender's id. Counts as leader contact — it feeds leader
    /// stickiness and resets the election timer — because a follower
    /// receiving a long snapshot stream gets no AppendEntries (the leader
    /// cannot build one below its horizon) and must not depose the leader
    /// mid-transfer. Messages from stale terms are ignored.
    pub fn note_leader_contact(&mut self, term: Term, leader: RaftId, now: u64) -> Vec<Action<C>> {
        let mut out = Vec::new();
        if term < self.term {
            return out;
        }
        if term > self.term || self.role != Role::Follower {
            self.become_follower(term, Some(leader), now, &mut out);
        }
        self.leader_id = Some(leader);
        self.last_leader_contact = now;
        self.reset_election_deadline(now);
        out
    }

    /// Driver hook: a snapshot chunk arrived from *some* peer serving a
    /// transfer — not necessarily the leader (recovery is peer-served, §5).
    /// Unlike [`Self::note_leader_contact`] this never asserts leadership on
    /// behalf of the sender: a same-term leader receiving a chunk stays
    /// leader, and no `leader_id` hint is planted. It still suppresses
    /// elections on followers — a node mid-catch-up gets no AppendEntries
    /// (nothing can be built for it below the serving peer's horizon) and
    /// must not depose a healthy leader while the stream runs.
    pub fn note_peer_contact(&mut self, term: Term, now: u64) -> Vec<Action<C>> {
        let mut out = Vec::new();
        if term < self.term {
            return out;
        }
        if term > self.term {
            self.become_follower(term, None, now, &mut out);
        }
        if self.role == Role::Follower {
            self.last_leader_contact = now;
            self.reset_election_deadline(now);
        }
        out
    }

    /// Driver hook: the leader heard a current-term control message (e.g. a
    /// snapshot-chunk ack) from `peer`. Feeds check-quorum, which would
    /// otherwise depose a leader spending many election timeouts streaming
    /// a large snapshot to its only reachable follower.
    pub fn note_peer_heard(&mut self, peer: RaftId, now: u64) {
        if let Some(p) = self.progress.get_mut(&peer) {
            p.last_heard = now;
        }
    }

    /// HovercRaft++ hook (§4): a follower advances its commit index on an
    /// `AGG_COMMIT` from the in-network aggregator. The aggregator is an
    /// extension of the leader, so this is the moral equivalent of learning
    /// `leader_commit` from an AppendEntries; the caller must have verified
    /// the message's term. Only locally present entries can commit. No-op
    /// on a leader (its commit comes from quorum accounting).
    pub fn observe_commit(&mut self, upto: LogIndex) -> Vec<Action<C>> {
        let mut out = Vec::new();
        self.observe_commit_into(upto, &mut out);
        out
    }

    /// [`RaftNode::observe_commit`] appending into a caller-owned buffer
    /// (drivers on the hot path reuse one scratch `Vec` across calls).
    pub fn observe_commit_into(&mut self, upto: LogIndex, out: &mut Vec<Action<C>>) {
        if self.is_leader() {
            return;
        }
        let new = upto.min(self.log.last_index());
        if new > self.commit {
            self.commit = new;
            out.push(Action::Commit { upto: new });
        }
    }

    // ---- client interface --------------------------------------------------

    /// Appends a command to the leader's log. Returns its index; the entry
    /// is shipped by the next [`RaftNode::pump`] (subject to the ceiling).
    pub fn propose(&mut self, cmd: C) -> Result<LogIndex, NotLeader> {
        if !self.is_leader() {
            return Err(NotLeader {
                hint: self.leader_id,
            });
        }
        let idx = self.log.append(self.term, cmd);
        // Single-node cluster: quorum is 1, commit immediately.
        Ok(idx)
    }

    /// Ships pending entries (up to the ceiling, batched) to all followers,
    /// and on a single-node cluster advances the commit index directly.
    pub fn pump(&mut self, now: u64) -> Vec<Action<C>> {
        let mut out = Vec::new();
        self.pump_into(now, &mut out);
        out
    }

    /// [`RaftNode::pump`] appending into a caller-owned buffer.
    pub fn pump_into(&mut self, now: u64, out: &mut Vec<Action<C>>) {
        if !self.is_leader() {
            return;
        }
        let target = self.log.last_index().min(self.ceiling);
        for i in 0..self.peer_ids.len() {
            let peer = self.peer_ids[i];
            self.send_append(peer, target, false, out);
        }
        if target > self.announced {
            self.announced = target;
        }
        if self.cfg.cluster_size() == 1 {
            self.maybe_commit(out);
        }
        let _ = now;
    }

    // ---- time --------------------------------------------------------------

    /// Drives elections and heartbeats; call at least a few times per
    /// heartbeat interval.
    pub fn tick(&mut self, now: u64) -> Vec<Action<C>> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// [`RaftNode::tick`] appending into a caller-owned buffer.
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<Action<C>>) {
        match self.role {
            Role::Follower | Role::PreCandidate | Role::Candidate => {
                if now >= self.election_deadline {
                    self.start_election(now, out);
                }
            }
            Role::Leader => {
                if now >= self.heartbeat_due {
                    // Check-quorum: a leader that has not heard from a
                    // quorum within an election timeout is probably on the
                    // minority side of a partition; step down so clients
                    // stop being admitted into a log that cannot commit.
                    if self.cfg.check_quorum {
                        let grace = self.cfg.election_timeout_max;
                        let heard = 1 + self
                            .progress
                            .values()
                            .filter(|p| now.saturating_sub(p.last_heard) < grace)
                            .count();
                        if heard < self.cfg.quorum() {
                            self.become_follower(self.term, None, now, out);
                            return;
                        }
                    }
                    self.heartbeat_due = now + self.cfg.heartbeat_interval;
                    let target = self.log.last_index().min(self.ceiling);
                    for i in 0..self.peer_ids.len() {
                        let peer = self.peer_ids[i];
                        self.send_append(peer, target, true, out);
                    }
                    if target > self.announced {
                        self.announced = target;
                    }
                }
            }
        }
    }

    // ---- message handling ----------------------------------------------------

    /// Processes one incoming message from `from`.
    pub fn step(&mut self, from: RaftId, msg: Message<C>, now: u64) -> Vec<Action<C>> {
        let mut out = Vec::new();
        self.step_into(from, msg, now, &mut out);
        out
    }

    /// [`RaftNode::step`] appending into a caller-owned buffer.
    pub fn step_into(&mut self, from: RaftId, msg: Message<C>, now: u64, out: &mut Vec<Action<C>>) {
        // Pre-Vote traffic never adjusts terms: a probe's term is
        // speculative (the sender has not actually bumped its own), so the
        // generic "higher term ⇒ become follower" rule must not see it.
        match &msg {
            Message::PreVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                self.on_pre_vote(*term, *candidate, *last_log_index, *last_log_term, now, out);
                return;
            }
            Message::PreVoteReply { term, granted } => {
                self.on_pre_vote_reply(from, *term, *granted, now, out);
                return;
            }
            _ => {}
        }
        if msg.term() > self.term {
            let leader = match &msg {
                Message::AppendEntries { leader, .. } => Some(*leader),
                _ => None,
            };
            self.become_follower(msg.term(), leader, now, out);
        }
        match msg {
            Message::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(term, candidate, last_log_index, last_log_term, now, out),
            Message::RequestVoteReply { term, granted } => {
                self.on_vote_reply(from, term, granted, now, out)
            }
            Message::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.on_append(
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
                now,
                out,
            ),
            Message::AppendEntriesReply {
                term,
                success,
                match_index,
                conflict_index,
                applied_index,
                from: responder,
            } => self.on_append_reply(
                responder,
                term,
                success,
                match_index,
                conflict_index,
                applied_index,
                now,
                out,
            ),
            Message::PreVote { .. } | Message::PreVoteReply { .. } => {
                unreachable!("pre-vote traffic is routed before the term check")
            }
        }
    }

    // ---- internals -------------------------------------------------------

    fn reset_election_deadline(&mut self, now: u64) {
        // A degenerate jitter window (width 1) draws nothing: the outcome
        // is forced, and skipping the draw keeps the generator stream — and
        // with it the model checker's state fingerprints — independent of
        // how many times the deadline was reset.
        let jitter = if self.cfg.election_timeout_max - self.cfg.election_timeout_min == 1 {
            self.cfg.election_timeout_min
        } else {
            self.rng
                .gen_range(self.cfg.election_timeout_min..self.cfg.election_timeout_max)
        };
        self.election_deadline = now + jitter;
    }

    fn become_follower(
        &mut self,
        term: Term,
        leader: Option<RaftId>,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        let was_leader = self.is_leader();
        let term_bumped = term > self.term;
        if term_bumped {
            self.term = term;
            self.voted_for = None;
            out.push(Action::SaveHardState {
                term: self.term,
                voted_for: self.voted_for,
            });
        }
        self.role = Role::Follower;
        self.leader_id = leader;
        self.progress.clear();
        self.votes = 0;
        self.voters.clear();
        self.reset_election_deadline(now);
        if was_leader || term_bumped {
            out.push(Action::BecameFollower { term: self.term });
        }
    }

    /// Election timeout fired: either probe for a Pre-Vote quorum (no term
    /// bump, no durable state change) or campaign directly.
    fn start_election(&mut self, now: u64, out: &mut Vec<Action<C>>) {
        if !self.cfg.pre_vote {
            self.campaign(now, out);
            return;
        }
        self.role = Role::PreCandidate;
        self.votes = 1;
        self.voters = vec![self.cfg.id];
        self.reset_election_deadline(now);
        if self.votes >= self.cfg.quorum() {
            self.campaign(now, out);
            return;
        }
        let msg = Message::PreVote {
            term: self.term + 1,
            candidate: self.cfg.id,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        for i in 0..self.peer_ids.len() {
            let peer = self.peer_ids[i];
            out.push(Action::Send {
                to: peer,
                msg: msg.clone(),
            });
        }
    }

    /// A real election: bump the term, vote for self, solicit votes.
    fn campaign(&mut self, now: u64, out: &mut Vec<Action<C>>) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.cfg.id);
        self.leader_id = None;
        self.votes = 1;
        self.voters = vec![self.cfg.id];
        self.reset_election_deadline(now);
        out.push(Action::SaveHardState {
            term: self.term,
            voted_for: self.voted_for,
        });
        if self.votes >= self.cfg.quorum() {
            self.become_leader(now, out);
            return;
        }
        let msg = Message::RequestVote {
            term: self.term,
            candidate: self.cfg.id,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        for i in 0..self.peer_ids.len() {
            let peer = self.peer_ids[i];
            out.push(Action::Send {
                to: peer,
                msg: msg.clone(),
            });
        }
    }

    /// Answers a Pre-Vote probe. Grants iff the probe's prospective term
    /// beats ours, the candidate's log is up to date, *and* we are not in
    /// live contact with a leader (leader stickiness) — a node returning
    /// from a partition or restart therefore cannot assemble a Pre-Vote
    /// quorum against a healthy leader. Grants change no state.
    fn on_pre_vote(
        &mut self,
        term: Term,
        candidate: RaftId,
        last_log_index: LogIndex,
        last_log_term: Term,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        let up_to_date = last_log_term > self.log.last_term()
            || (last_log_term == self.log.last_term() && last_log_index >= self.log.last_index());
        let in_leader_contact = self.is_leader()
            || (self.leader_id.is_some()
                && now < self.last_leader_contact + self.cfg.election_timeout_min);
        let granted = term > self.term && up_to_date && !in_leader_contact;
        out.push(Action::Send {
            to: candidate,
            msg: Message::PreVoteReply {
                term: if granted { term } else { self.term },
                granted,
            },
        });
    }

    fn on_pre_vote_reply(
        &mut self,
        from: RaftId,
        term: Term,
        granted: bool,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        if !granted {
            // A rejection carrying a newer term means we fell behind while
            // disconnected; adopt it so the next probe is meaningful.
            if term > self.term {
                self.become_follower(term, None, now, out);
            }
            return;
        }
        if self.role != Role::PreCandidate || term != self.term + 1 {
            return;
        }
        if !self.voters.contains(&from) {
            self.voters.push(from);
            self.votes += 1;
        }
        if self.votes >= self.cfg.quorum() {
            self.campaign(now, out);
        }
    }

    fn become_leader(&mut self, now: u64, out: &mut Vec<Action<C>>) {
        self.role = Role::Leader;
        self.leader_id = Some(self.cfg.id);
        self.heartbeat_due = now; // assert leadership immediately
        let last = self.log.last_index();
        self.progress = self
            .cfg
            .peers()
            .map(|p| (p, Progress::new(last, now)))
            .collect();
        // A new term starts with a fresh announcement horizon: HovercRaft
        // re-announces (and re-assigns repliers for) entries the old leader
        // had shipped but the new one has not.
        self.announced = 0;
        self.ceiling = LogIndex::MAX;
        out.push(Action::BecameLeader { term: self.term });
        if self.cfg.cluster_size() == 1 {
            self.maybe_commit(out);
        }
    }

    /// Builds and emits one AppendEntries to `peer`, shipping entries
    /// `[next, target]` (batched). When `force` is set an empty heartbeat is
    /// sent even if there is nothing new.
    fn send_append(
        &mut self,
        peer: RaftId,
        target: LogIndex,
        force: bool,
        out: &mut Vec<Action<C>>,
    ) {
        let Some(p) = self.progress.get(&peer) else {
            return;
        };
        let mut next = p.next;
        let has_new = next <= target;
        if !has_new && !force {
            return;
        }
        if has_new && next > p.matched + self.cfg.max_inflight as u64 {
            // The pipeline to this follower is full of unacked entries.
            if !force {
                return; // pump backs off; acks (or a heartbeat) resume it
            }
            // A heartbeat fired with the window still full: nothing has
            // been acked for a full heartbeat interval, so treat the
            // outstanding window as lost and retransmit from the last
            // acknowledged index. Acks are monotone, so late duplicates
            // of the original sends are harmless.
            next = p.matched + 1;
        }
        if next < self.log.first_index() {
            // The retransmit start is below the compaction horizon (e.g. a
            // peer with no acks this term resets to `matched + 1 == 1`).
            // The explicit check matters: `term_at(0)` is the sentinel
            // `Some(0)` even on a compacted log, which would otherwise let
            // this degenerate into an empty-AppendEntries loop that never
            // ships an entry and never detects the horizon. Park and ask
            // the driver to stream the snapshot instead.
            if let Some(p) = self.progress.get_mut(&peer) {
                if !p.pending_snapshot {
                    p.pending_snapshot = true;
                    out.push(Action::NeedsSnapshot { to: peer });
                }
            }
            return;
        }
        let hi = if has_new {
            target.min(next + self.cfg.max_batch as u64 - 1)
        } else {
            0
        };
        let prev = next - 1;
        let Some(prev_term) = self.log.term_at(prev) else {
            // Peer is behind the compaction horizon: no AppendEntries can
            // be built, so ask the driver to stream the snapshot. Emitted
            // once per transfer; replication to this peer parks until
            // `on_snapshot_installed` lifts the flag.
            if let Some(p) = self.progress.get_mut(&peer) {
                if !p.pending_snapshot {
                    p.pending_snapshot = true;
                    out.push(Action::NeedsSnapshot { to: peer });
                }
            }
            return;
        };
        let entries: Vec<Entry<C>> = if has_new {
            self.log.range(next, hi).to_vec()
        } else {
            Vec::new()
        };
        let n = entries.len() as u64;
        let msg = Message::AppendEntries {
            term: self.term,
            leader: self.cfg.id,
            prev_log_index: prev,
            prev_log_term: prev_term,
            entries,
            leader_commit: self.commit,
        };
        if let Some(p) = self.progress.get_mut(&peer) {
            if n > 0 {
                p.next = next + n; // optimistic pipelining
            }
            p.commit_told = p.commit_told.max(self.commit);
        }
        out.push(Action::Send { to: peer, msg });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_request_vote(
        &mut self,
        term: Term,
        candidate: RaftId,
        last_log_index: LogIndex,
        last_log_term: Term,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        let up_to_date = last_log_term > self.log.last_term()
            || (last_log_term == self.log.last_term() && last_log_index >= self.log.last_index());
        let can_vote = self.voted_for.is_none() || self.voted_for == Some(candidate);
        let granted = term == self.term && up_to_date && can_vote;
        if granted {
            self.voted_for = Some(candidate);
            self.reset_election_deadline(now);
            out.push(Action::SaveHardState {
                term: self.term,
                voted_for: self.voted_for,
            });
        }
        out.push(Action::Send {
            to: candidate,
            msg: Message::RequestVoteReply {
                term: self.term,
                granted,
            },
        });
    }

    fn on_vote_reply(
        &mut self,
        from: RaftId,
        term: Term,
        granted: bool,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        if self.role != Role::Candidate || term != self.term || !granted {
            return;
        }
        if !self.voters.contains(&from) {
            self.voters.push(from);
            self.votes += 1;
        }
        if self.votes >= self.cfg.quorum() {
            self.become_leader(now, out);
            // Announce immediately with empty appends.
            for i in 0..self.peer_ids.len() {
                let peer = self.peer_ids[i];
                self.send_append(peer, 0, true, out);
            }
            self.heartbeat_due = now + self.cfg.heartbeat_interval;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        term: Term,
        leader: RaftId,
        prev_log_index: LogIndex,
        prev_log_term: Term,
        entries: Vec<Entry<C>>,
        leader_commit: LogIndex,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        if term < self.term {
            out.push(Action::Send {
                to: leader,
                msg: Message::AppendEntriesReply {
                    term: self.term,
                    success: false,
                    match_index: 0,
                    conflict_index: 0,
                    applied_index: self.applied,
                    from: self.cfg.id,
                },
            });
            return;
        }
        // A valid AppendEntries from the current term's leader.
        if self.role != Role::Follower {
            self.become_follower(term, Some(leader), now, out);
        }
        self.leader_id = Some(leader);
        self.last_leader_contact = now;
        self.reset_election_deadline(now);

        // Consistency check on the previous entry.
        match self.log.term_at(prev_log_index) {
            Some(t) if t == prev_log_term => {}
            Some(t) => {
                // Conflicting term: hint the first index of that term.
                let mut ci = prev_log_index;
                while ci > self.log.first_index() && self.log.term_at(ci - 1) == Some(t) {
                    ci -= 1;
                }
                out.push(Action::Send {
                    to: leader,
                    msg: Message::AppendEntriesReply {
                        term: self.term,
                        success: false,
                        match_index: 0,
                        conflict_index: ci,
                        applied_index: self.applied,
                        from: self.cfg.id,
                    },
                });
                return;
            }
            None => {
                out.push(Action::Send {
                    to: leader,
                    msg: Message::AppendEntriesReply {
                        term: self.term,
                        success: false,
                        match_index: 0,
                        conflict_index: self.log.last_index() + 1,
                        applied_index: self.applied,
                        from: self.cfg.id,
                    },
                });
                return;
            }
        }

        // Append, truncating conflicts.
        let mut last_new = prev_log_index;
        for e in entries {
            match self.log.term_at(e.index) {
                Some(t) if t == e.term => {
                    last_new = e.index;
                }
                Some(_) => {
                    assert!(
                        e.index > self.commit,
                        "protocol violation: truncating a committed entry"
                    );
                    self.log.truncate_from(e.index);
                    last_new = e.index;
                    self.log.push(e);
                }
                None => {
                    if e.index == self.log.last_index() + 1 {
                        last_new = e.index;
                        self.log.push(e);
                    }
                    // else: gap (stale out-of-order AE) — ignore the rest.
                }
            }
        }

        if leader_commit > self.commit {
            let new_commit = leader_commit.min(last_new);
            if new_commit > self.commit {
                self.commit = new_commit;
                out.push(Action::Commit { upto: self.commit });
            }
        }

        out.push(Action::Send {
            to: leader,
            msg: Message::AppendEntriesReply {
                term: self.term,
                success: true,
                match_index: last_new,
                conflict_index: 0,
                applied_index: self.applied,
                from: self.cfg.id,
            },
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append_reply(
        &mut self,
        from: RaftId,
        term: Term,
        success: bool,
        match_index: LogIndex,
        conflict_index: LogIndex,
        applied_index: LogIndex,
        now: u64,
        out: &mut Vec<Action<C>>,
    ) {
        if !self.is_leader() || term != self.term {
            return;
        }
        let Some(p) = self.progress.get_mut(&from) else {
            return;
        };
        p.last_heard = now;
        if success {
            p.on_success(match_index, applied_index);
            self.maybe_commit(out);
            // A follower that is fully caught up on entries but was last
            // told a stale commit index would otherwise not learn the
            // commit until the next heartbeat — fatal for the latency of
            // load-balanced repliers (§3.7's 2.5-RTT path). Nudge it now.
            if let Some(p) = self.progress.get(&from) {
                let target = self.log.last_index().min(self.ceiling);
                if p.matched + 1 == p.next && p.next > target && p.commit_told < self.commit {
                    self.send_append(from, target, true, out);
                }
            }
        } else {
            p.on_conflict(conflict_index);
            // Resend immediately from the rewound position.
            let target = self.log.last_index().min(self.ceiling);
            self.send_append(from, target, true, out);
        }
        let _ = now;
    }

    /// Advances the commit index if a quorum matches, restricted to entries
    /// of the current term (Raft §5.4.2), and on advance optionally
    /// broadcasts the new commit index eagerly.
    fn maybe_commit(&mut self, out: &mut Vec<Action<C>>) {
        let mut matches: Vec<LogIndex> = self.progress.values().map(|p| p.matched).collect();
        matches.push(self.log.last_index().min(self.ceiling)); // self
        matches.sort_unstable_by(|a, b| b.cmp(a));
        let candidate = matches[self.cfg.quorum() - 1];
        if candidate > self.commit && self.log.term_at(candidate) == Some(self.term) {
            self.commit = candidate;
            out.push(Action::Commit { upto: self.commit });
            if self.cfg.eager_commit_notify {
                // Tell followers about the new commit index right away —
                // but only the ones with nothing in flight. A busy pipeline
                // delivers the commit index on its next data-carrying
                // AppendEntries anyway, and forcing empty appends at high
                // load would double the leader's packet rate.
                let target = self.log.last_index().min(self.ceiling);
                for i in 0..self.peer_ids.len() {
                    let peer = self.peer_ids[i];
                    let caught_up = self
                        .progress
                        .get(&peer)
                        .map(|p| p.matched + 1 == p.next && p.next > target)
                        .unwrap_or(false);
                    if caught_up {
                        self.send_append(peer, target, true, out);
                    }
                }
            }
        }
    }
}
