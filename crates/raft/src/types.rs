//! Core identifiers and roles.

/// A Raft peer identifier. In the testbed this equals the node's network
/// address, but the library itself attaches no meaning to the value.
pub type RaftId = u32;

/// A Raft term (monotonically increasing election epoch).
pub type Term = u64;

/// An index into the replicated log; the first real entry has index 1 and
/// index 0 denotes "before the log".
pub type LogIndex = u64;

/// The role a node currently plays in the consensus group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Passive replica: answers RPCs from candidates and the leader.
    Follower,
    /// Probing for a Pre-Vote quorum before bumping its term (the Pre-Vote
    /// extension of Ongaro's thesis §9.6); no durable state changes yet.
    PreCandidate,
    /// Trying to get elected after an election timeout.
    Candidate,
    /// Strong leader: the single serialization point for client requests.
    Leader,
}

impl Role {
    /// True if this node believes itself the leader.
    pub fn is_leader(self) -> bool {
        self == Role::Leader
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_predicates() {
        assert!(Role::Leader.is_leader());
        assert!(!Role::Follower.is_leader());
        assert!(!Role::Candidate.is_leader());
        assert!(!Role::PreCandidate.is_leader());
    }
}
