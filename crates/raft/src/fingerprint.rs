//! Structural state fingerprints for explicit-state model checking.
//!
//! The `mc` crate deduplicates explored states by a canonical hash. Every
//! layer that owns protocol state implements [`HashState`]: feed the
//! hasher a deterministic rendering of the fields that define future
//! behaviour, mapping every embedded node id through `rename` so the
//! checker can canonicalize over node-id permutations (symmetry
//! reduction). Conventions:
//!
//! * **Ids** — any field holding a `RaftId` (own id, votes, leader hints,
//!   progress keys, replier stamps) is hashed as `rename(id)`.
//! * **Collections keyed by id** — hashed as a vector sorted by the
//!   *renamed* key, so two states identical up to a permutation hash
//!   equally.
//! * **Timestamps** — hashed relative to the owner's clock (deadlines as
//!   `deadline - now`, last-contact marks as `now - t`), so two states
//!   that differ only by a uniform time shift coincide.
//! * **RNG** — the raw generator words are included: the seeded stream is
//!   part of the deterministic system definition (tie-breaks, jitter),
//!   so states with different generator positions may behave differently
//!   and must not merge.
//!
//! Implementations live next to the private fields they read; this module
//! only defines the trait and the leaf impl for [`Message`].

use std::hash::Hasher;

use crate::log::Entry;
use crate::message::Message;
use crate::types::RaftId;

/// Deterministic structural hashing with node-id renaming (see module
/// docs). Unlike `std::hash::Hash`, implementations must define *which*
/// fields are behaviourally relevant and must route ids through `rename`.
pub trait HashState {
    /// Feeds this value's behaviour-relevant state into `h`.
    fn hash_state(&self, h: &mut dyn Hasher, rename: &dyn Fn(RaftId) -> RaftId);
}

impl<C: HashState> HashState for Entry<C> {
    fn hash_state(&self, h: &mut dyn Hasher, rename: &dyn Fn(RaftId) -> RaftId) {
        h.write_u64(self.term);
        h.write_u64(self.index);
        self.cmd.hash_state(h, rename);
    }
}

impl<C: HashState> HashState for Message<C> {
    fn hash_state(&self, h: &mut dyn Hasher, rename: &dyn Fn(RaftId) -> RaftId) {
        match self {
            Message::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                h.write_u8(0);
                h.write_u64(*term);
                h.write_u32(rename(*candidate));
                h.write_u64(*last_log_index);
                h.write_u64(*last_log_term);
            }
            Message::RequestVoteReply { term, granted } => {
                h.write_u8(1);
                h.write_u64(*term);
                h.write_u8(*granted as u8);
            }
            Message::PreVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                h.write_u8(2);
                h.write_u64(*term);
                h.write_u32(rename(*candidate));
                h.write_u64(*last_log_index);
                h.write_u64(*last_log_term);
            }
            Message::PreVoteReply { term, granted } => {
                h.write_u8(3);
                h.write_u64(*term);
                h.write_u8(*granted as u8);
            }
            Message::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => {
                h.write_u8(4);
                h.write_u64(*term);
                h.write_u32(rename(*leader));
                h.write_u64(*prev_log_index);
                h.write_u64(*prev_log_term);
                h.write_u64(*leader_commit);
                h.write_usize(entries.len());
                for e in entries {
                    e.hash_state(h, rename);
                }
            }
            Message::AppendEntriesReply {
                term,
                success,
                match_index,
                conflict_index,
                applied_index,
                from,
            } => {
                h.write_u8(5);
                h.write_u64(*term);
                h.write_u8(*success as u8);
                h.write_u64(*match_index);
                h.write_u64(*conflict_index);
                h.write_u64(*applied_index);
                h.write_u32(rename(*from));
            }
        }
    }
}
