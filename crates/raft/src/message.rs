//! Raft RPC messages.
//!
//! Two RPCs as in the Raft paper (Ongaro & Ousterhout, ATC '14):
//! RequestVote and AppendEntries, each with a reply. Following HovercRaft
//! §6.2, the AppendEntries *reply* additionally carries the follower's
//! `applied_index`, which the leader's bounded-queue and load-balancing
//! logic consume; vanilla Raft simply ignores the field.

use crate::log::Entry;
use crate::types::{LogIndex, RaftId, Term};

/// A Raft protocol message, generic over the log command type `C`.
#[derive(Clone, Debug, PartialEq)]
pub enum Message<C> {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Candidate requesting the vote.
        candidate: RaftId,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Reply to [`Message::RequestVote`].
    RequestVoteReply {
        /// Voter's current term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Pre-Vote probe (Ongaro's thesis §9.6): would you vote for me at
    /// `term` (my current term + 1)? Carries no durable consequences for
    /// either side — the sender has *not* bumped its term, and the receiver
    /// does not record a vote. This is what lets a node returning from a
    /// partition or restart rejoin without deposing a stable leader.
    PreVote {
        /// The term the sender *would* campaign at (its current term + 1).
        term: Term,
        /// Prospective candidate.
        candidate: RaftId,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Reply to [`Message::PreVote`].
    PreVoteReply {
        /// On grant: echoes the probed term. On rejection: the voter's
        /// actual current term, so a stale prospective candidate catches up.
        term: Term,
        /// Whether a real vote would be granted.
        granted: bool,
    },
    /// Leader replicates entries / sends heartbeats.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Leader id, so followers can redirect clients.
        leader: RaftId,
        /// Index of the entry immediately preceding `entries`.
        prev_log_index: LogIndex,
        /// Term of the `prev_log_index` entry.
        prev_log_term: Term,
        /// New entries to append (empty for pure heartbeats).
        entries: Vec<Entry<C>>,
        /// Leader's commit index.
        leader_commit: LogIndex,
    },
    /// Reply to [`Message::AppendEntries`].
    AppendEntriesReply {
        /// Follower's current term.
        term: Term,
        /// Whether the append matched.
        success: bool,
        /// On success: index of the last entry known to match the leader.
        match_index: LogIndex,
        /// On failure: a hint for the leader to rewind `next_index`
        /// (first index of the conflicting term, or last+1 when the
        /// follower's log is simply short).
        conflict_index: LogIndex,
        /// HovercRaft extension (§6.2): the follower's applied index, used
        /// for bounded queues and reply load balancing.
        applied_index: LogIndex,
        /// Responder id (needed because replies may be aggregated in the
        /// network and arrive from a different source address).
        from: RaftId,
    },
}

impl<C> Message<C> {
    /// The term carried by this message.
    pub fn term(&self) -> Term {
        match self {
            Message::RequestVote { term, .. }
            | Message::RequestVoteReply { term, .. }
            | Message::PreVote { term, .. }
            | Message::PreVoteReply { term, .. }
            | Message::AppendEntries { term, .. }
            | Message::AppendEntriesReply { term, .. } => *term,
        }
    }

    /// True for AppendEntries with no entries (pure heartbeat/commit bump).
    pub fn is_heartbeat(&self) -> bool {
        matches!(self, Message::AppendEntries { entries, .. } if entries.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_extraction() {
        let m: Message<u8> = Message::RequestVote {
            term: 7,
            candidate: 1,
            last_log_index: 0,
            last_log_term: 0,
        };
        assert_eq!(m.term(), 7);
        let m: Message<u8> = Message::AppendEntriesReply {
            term: 9,
            success: true,
            match_index: 4,
            conflict_index: 0,
            applied_index: 2,
            from: 3,
        };
        assert_eq!(m.term(), 9);
    }

    #[test]
    fn heartbeat_detection() {
        let hb: Message<u8> = Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        assert!(hb.is_heartbeat());
        let ae: Message<u8> = Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 1,
                index: 1,
                cmd: 9,
            }],
            leader_commit: 0,
        };
        assert!(!ae.is_heartbeat());
    }
}
