//! Per-follower replication progress, as tracked by the leader.

use crate::types::LogIndex;

/// The leader's view of one follower.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Next log index to send to this follower (optimistically advanced
    /// when entries are sent; rewound on a failed AppendEntries reply).
    pub next: LogIndex,
    /// Highest log index known to be replicated on this follower.
    pub matched: LogIndex,
    /// Highest log index the follower reports having *applied* to its state
    /// machine — HovercRaft extension (§6.2), consumed by the bounded-queue
    /// eligibility check and JBSQ load balancing.
    pub applied: LogIndex,
    /// The `leader_commit` value carried by the last AppendEntries sent to
    /// this follower; lets the leader notice a follower that is fully
    /// caught up on entries but behind on the commit index.
    pub commit_told: LogIndex,
    /// When the leader last heard *anything* current-term from this
    /// follower, in driver-clock ns; consumed by check-quorum.
    pub last_heard: u64,
    /// True while a snapshot transfer to this follower is pending: the
    /// leader has emitted [`crate::Action::NeedsSnapshot`] and not yet seen
    /// the install acknowledged. Dedups the action and parks replication.
    pub pending_snapshot: bool,
}

impl Progress {
    /// Fresh progress for a follower right after election at time `now`
    /// (the election instant counts as having heard from everyone, which
    /// gives check-quorum a full timeout of grace).
    pub fn new(last_index: LogIndex, now: u64) -> Progress {
        Progress {
            next: last_index + 1,
            matched: 0,
            applied: 0,
            commit_told: 0,
            last_heard: now,
            pending_snapshot: false,
        }
    }

    /// Records a successful append up to `match_index` with the follower's
    /// reported `applied_index`.
    pub fn on_success(&mut self, match_index: LogIndex, applied_index: LogIndex) {
        self.matched = self.matched.max(match_index);
        self.next = self.next.max(match_index + 1);
        self.applied = self.applied.max(applied_index);
    }

    /// Rewinds `next` after a failed append, using the follower's conflict
    /// hint (never below 1, never below what is already matched).
    pub fn on_conflict(&mut self, conflict_index: LogIndex) {
        self.next = conflict_index.max(self.matched + 1).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_is_monotone() {
        let mut p = Progress::new(10, 0);
        assert_eq!(p.next, 11);
        p.on_success(5, 3);
        assert_eq!((p.matched, p.applied), (5, 3));
        // Stale replies cannot move progress backwards.
        p.on_success(4, 2);
        assert_eq!((p.matched, p.applied), (5, 3));
        assert_eq!(p.next, 11);
    }

    #[test]
    fn conflict_rewinds_but_not_below_matched() {
        let mut p = Progress::new(10, 0);
        p.on_success(5, 5);
        p.on_conflict(3);
        assert_eq!(p.next, 6, "never below matched + 1");
        p.on_conflict(8);
        assert_eq!(p.next, 8);
    }

    #[test]
    fn conflict_never_reaches_zero() {
        let mut p = Progress::new(0, 0);
        p.on_conflict(0);
        assert_eq!(p.next, 1);
    }
}
