//! # raft — a sans-io, deterministic Raft consensus library
//!
//! A production-style reimplementation of the Raft consensus algorithm
//! (Ongaro & Ousterhout, "In Search of an Understandable Consensus
//! Algorithm", USENIX ATC '14), built as the consensus substrate for the
//! HovercRaft reproduction — playing the role the `willemt/raft` C library
//! plays in the paper's implementation (§6).
//!
//! The node ([`RaftNode`]) is a pure state machine: drivers feed it incoming
//! [`Message`]s and clock readings, and it emits [`Action`]s (messages to
//! send, commit notifications, role changes). There is no I/O, no threads,
//! and no wall clock anywhere in this crate, which makes it equally at home
//! under the deterministic simulator, property-based tests, or a real
//! network runtime.
//!
//! ## HovercRaft extension points
//!
//! HovercRaft (§5) leaves the consensus core untouched and needs exactly two
//! hooks, both inert under vanilla use:
//!
//! * [`RaftNode::set_ceiling`] — the leader withholds entries above the
//!   ceiling from AppendEntries, so the HovercRaft layer can stamp each
//!   entry's designated replier *before* its first transmission and enforce
//!   the bounded-queue invariant (§3.3–3.4);
//! * `applied_index` in the AppendEntries reply (§6.2) — reported via
//!   [`RaftNode::set_applied`], consumed by bounded queues and JBSQ.
//!
//! ## Example
//!
//! ```
//! use raft::{Config, RaftNode, Action, Message};
//!
//! // A single-node "cluster" elects itself and commits immediately.
//! let mut n = RaftNode::<u64>::new(Config::new(0, vec![0]), 0);
//! // Advance past the election timeout.
//! let actions = n.tick(50_000_000);
//! assert!(actions.iter().any(|a| matches!(a, Action::BecameLeader { .. })));
//! n.propose(42).unwrap();
//! let actions = n.pump(50_000_001);
//! assert!(actions.iter().any(|a| matches!(a, Action::Commit { upto: 1 })));
//! assert_eq!(n.commit_index(), 1);
//! ```

#![warn(missing_docs)]

mod config;
mod fingerprint;
mod log;
mod message;
mod node;
mod progress;
mod types;

pub use config::Config;
pub use fingerprint::HashState;
pub use log::{Entry, RaftLog};
pub use message::Message;
pub use node::{Action, NotLeader, RaftNode};
pub use progress::Progress;
pub use types::{LogIndex, RaftId, Role, Term};
