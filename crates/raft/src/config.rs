//! Node configuration and timing parameters.
//!
//! The library is sans-io: it never reads a clock. Callers pass `now` (in
//! nanoseconds, from whatever clock drives the deployment — the simulator's
//! virtual clock in the testbed) into every entry point, and the node
//! compares it against deadlines derived from these parameters.

use crate::types::RaftId;

/// Static configuration of one Raft node.
#[derive(Clone, Debug)]
pub struct Config {
    /// This node's id.
    pub id: RaftId,
    /// All members of the group, including this node.
    pub members: Vec<RaftId>,
    /// Lower bound of the randomized election timeout, in ns.
    pub election_timeout_min: u64,
    /// Upper bound (exclusive) of the randomized election timeout, in ns.
    pub election_timeout_max: u64,
    /// Leader heartbeat period, in ns. Must be well below the election
    /// timeout.
    pub heartbeat_interval: u64,
    /// Maximum entries per AppendEntries message.
    pub max_batch: usize,
    /// Maximum entries a follower may have in flight (sent past its
    /// acknowledged `matched` index) before the pipeline pauses. Without
    /// this cap, a leader catching up a healed follower streams the whole
    /// backlog at the offered rate; the follower's receive ring overflows,
    /// the resulting gaps produce conflict/rewind/resend churn, and the
    /// leader's network thread saturates re-sending the same batches. When
    /// the window is full and a heartbeat fires, the unacked window is
    /// retransmitted from `matched + 1` (presumed lost).
    pub max_inflight: usize,
    /// If true, the leader broadcasts a commit-bearing AppendEntries as
    /// soon as its commit index advances, instead of waiting for the next
    /// heartbeat. This is the "next communication round" of Figure 2
    /// collapsed to its minimum, and is what gives the 2.5-RTT unloaded
    /// latency of §3.7.
    pub eager_commit_notify: bool,
    /// If true, an election timeout first runs a Pre-Vote round (Ongaro's
    /// thesis §9.6): the node probes for a quorum *without* bumping its
    /// term, and only starts a real election if a quorum would grant the
    /// vote. Keeps nodes returning from a partition, pause, or restart from
    /// deposing a stable leader with an inflated term.
    pub pre_vote: bool,
    /// If true, a leader that has not heard from a quorum of peers within
    /// an election timeout steps down to follower (check-quorum). A leader
    /// partitioned into a minority stops accepting work instead of
    /// stranding admitted requests forever.
    pub check_quorum: bool,
    /// Seed for the node's deterministic election-timeout randomness.
    pub seed: u64,
}

impl Config {
    /// A configuration with timing defaults appropriate for a µs-scale
    /// datacenter deployment: 10 ms election timeouts, 1 ms heartbeats.
    pub fn new(id: RaftId, members: Vec<RaftId>) -> Config {
        Config {
            id,
            members,
            election_timeout_min: 10_000_000,
            election_timeout_max: 20_000_000,
            heartbeat_interval: 1_000_000,
            max_batch: 64,
            max_inflight: 256,
            eager_commit_notify: true,
            pre_vote: true,
            check_quorum: true,
            seed: 0x5eed + id as u64,
        }
    }

    /// Number of members in the group.
    pub fn cluster_size(&self) -> usize {
        self.members.len()
    }

    /// Votes (including one's own) needed to win an election or commit.
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// The other members of the group.
    pub fn peers(&self) -> impl Iterator<Item = RaftId> + '_ {
        let me = self.id;
        self.members.iter().copied().filter(move |m| *m != me)
    }

    /// Validates invariants; called by the node constructor.
    pub(crate) fn validate(&self) {
        assert!(
            self.members.contains(&self.id),
            "node {} not in member list",
            self.id
        );
        assert!(!self.members.is_empty());
        assert!(self.election_timeout_min > 0);
        assert!(self.election_timeout_max > self.election_timeout_min);
        assert!(self.heartbeat_interval > 0);
        assert!(
            self.heartbeat_interval < self.election_timeout_min,
            "heartbeats must outpace election timeouts"
        );
        assert!(self.max_batch > 0);
        assert!(
            self.max_inflight >= self.max_batch,
            "inflight window must fit at least one batch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes() {
        for (n, q) in [(1, 1), (2, 2), (3, 2), (5, 3), (7, 4), (9, 5)] {
            let c = Config::new(0, (0..n).collect());
            assert_eq!(c.quorum(), q, "n = {n}");
        }
    }

    #[test]
    fn peers_excludes_self() {
        let c = Config::new(1, vec![0, 1, 2]);
        let peers: Vec<RaftId> = c.peers().collect();
        assert_eq!(peers, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "not in member list")]
    fn validate_rejects_foreign_id() {
        let c = Config::new(9, vec![0, 1, 2]);
        let mut c2 = c;
        c2.id = 9;
        c2.members = vec![0, 1, 2];
        c2.validate();
    }

    #[test]
    #[should_panic(expected = "heartbeats must outpace")]
    fn validate_rejects_slow_heartbeat() {
        let mut c = Config::new(0, vec![0, 1, 2]);
        c.heartbeat_interval = c.election_timeout_min * 2;
        c.validate();
    }
}
