//! The replicated log.
//!
//! A contiguous sequence of term-stamped entries starting at `first_index`
//! (1 unless a prefix has been compacted away). The log enforces the
//! append/truncate discipline Raft's safety argument rests on: entries are
//! only removed by [`RaftLog::truncate_from`] when a leader's conflicting
//! entry overwrites them, and committed entries are never truncated (the
//! node layer guarantees commit ≤ match before truncation can reach them).

use crate::types::{LogIndex, Term};

/// One log entry: a term-stamped command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<C> {
    /// Term in which the entry was created by a leader.
    pub term: Term,
    /// Position in the log (1-based).
    pub index: LogIndex,
    /// The replicated command. For vanilla Raft this is the full client
    /// request; for HovercRaft it is fixed-size request metadata.
    pub cmd: C,
}

/// In-memory replicated log with optional compacted prefix.
#[derive(Clone, Debug)]
pub struct RaftLog<C> {
    entries: Vec<Entry<C>>,
    /// Index of the first retained entry (== 1 + snapshot boundary).
    first: LogIndex,
    /// Term of the entry just before `first` (snapshot term); 0 initially.
    prev_term: Term,
}

impl<C> Default for RaftLog<C> {
    fn default() -> Self {
        RaftLog {
            entries: Vec::new(),
            first: 1,
            prev_term: 0,
        }
    }
}

impl<C> RaftLog<C> {
    /// An empty log whose next index is 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the first retained entry.
    pub fn first_index(&self) -> LogIndex {
        self.first
    }

    /// Index of the last entry (0 if empty and nothing compacted).
    pub fn last_index(&self) -> LogIndex {
        self.first + self.entries.len() as u64 - 1
    }

    /// Term of the last entry (or of the compaction boundary).
    pub fn last_term(&self) -> Term {
        self.entries
            .last()
            .map(|e| e.term)
            .unwrap_or(self.prev_term)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Term of the entry at `idx`; `Some(0)` for index 0, `None` if the
    /// index is out of range or compacted away.
    pub fn term_at(&self, idx: LogIndex) -> Option<Term> {
        if idx == 0 {
            return Some(0);
        }
        if idx + 1 == self.first {
            return Some(self.prev_term);
        }
        if idx < self.first || idx > self.last_index() {
            return None;
        }
        Some(self.entries[(idx - self.first) as usize].term)
    }

    /// Borrow the entry at `idx`, if retained.
    pub fn get(&self, idx: LogIndex) -> Option<&Entry<C>> {
        if idx < self.first || idx > self.last_index() {
            return None;
        }
        Some(&self.entries[(idx - self.first) as usize])
    }

    /// Mutably borrow the entry at `idx`, if retained. HovercRaft uses this
    /// to stamp the immutable `replier` field just before an entry is
    /// announced for the first time.
    pub fn get_mut(&mut self, idx: LogIndex) -> Option<&mut Entry<C>> {
        if idx < self.first || idx > self.last_index() {
            return None;
        }
        Some(&mut self.entries[(idx - self.first) as usize])
    }

    /// Appends a command with the given term; returns its index.
    pub fn append(&mut self, term: Term, cmd: C) -> LogIndex {
        let index = self.last_index() + 1;
        self.entries.push(Entry { term, index, cmd });
        index
    }

    /// Appends a pre-formed entry; its index must be exactly `last + 1`.
    ///
    /// # Panics
    /// Panics if the entry's index is not contiguous.
    pub fn push(&mut self, e: Entry<C>) {
        assert_eq!(e.index, self.last_index() + 1, "non-contiguous append");
        self.entries.push(e);
    }

    /// Removes all entries at `idx` and above (conflict truncation).
    pub fn truncate_from(&mut self, idx: LogIndex) {
        assert!(
            idx >= self.first,
            "cannot truncate into the compacted prefix"
        );
        let keep = (idx - self.first) as usize;
        self.entries.truncate(keep.min(self.entries.len()));
    }

    /// Borrows the entries in `[lo, hi]` (inclusive, clamped to the log).
    pub fn range(&self, lo: LogIndex, hi: LogIndex) -> &[Entry<C>] {
        if self.entries.is_empty() || hi < self.first || lo > self.last_index() || lo > hi {
            return &[];
        }
        let lo = lo.max(self.first);
        let a = (lo - self.first) as usize;
        let b = (hi.min(self.last_index()) - self.first) as usize;
        &self.entries[a..=b]
    }

    /// Index of the snapshot boundary: the highest compacted-away index
    /// (0 when nothing has been compacted).
    pub fn snapshot_index(&self) -> LogIndex {
        self.first - 1
    }

    /// Term at the snapshot boundary (0 when nothing has been compacted).
    pub fn snapshot_term(&self) -> Term {
        self.prev_term
    }

    /// Replaces the entire log with a snapshot boundary at (`idx`, `term`):
    /// every retained entry is discarded and the next append lands at
    /// `idx + 1`. Used when installing a snapshot that is not an extension
    /// of the local log (the local suffix may conflict with it).
    pub fn reset_to(&mut self, idx: LogIndex, term: Term) {
        self.entries.clear();
        self.first = idx + 1;
        self.prev_term = term;
    }

    /// Discards entries up to and including `idx` (log compaction after a
    /// snapshot). Keeps the boundary term for consistency checks.
    pub fn compact_to(&mut self, idx: LogIndex) {
        if idx < self.first {
            return;
        }
        let idx = idx.min(self.last_index());
        let term = self.term_at(idx).expect("index retained");
        let drop = (idx + 1 - self.first) as usize;
        self.entries.drain(..drop);
        self.first = idx + 1;
        self.prev_term = term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log3() -> RaftLog<&'static str> {
        let mut l = RaftLog::new();
        l.append(1, "a");
        l.append(1, "b");
        l.append(2, "c");
        l
    }

    #[test]
    fn empty_log_boundaries() {
        let l: RaftLog<u32> = RaftLog::new();
        assert_eq!(l.first_index(), 1);
        assert_eq!(l.last_index(), 0);
        assert_eq!(l.last_term(), 0);
        assert_eq!(l.term_at(0), Some(0));
        assert_eq!(l.term_at(1), None);
        assert!(l.is_empty());
    }

    #[test]
    fn append_assigns_sequential_indices() {
        let l = log3();
        assert_eq!(l.last_index(), 3);
        assert_eq!(l.last_term(), 2);
        assert_eq!(l.get(2).unwrap().cmd, "b");
        assert_eq!(l.term_at(3), Some(2));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn truncate_removes_suffix() {
        let mut l = log3();
        l.truncate_from(2);
        assert_eq!(l.last_index(), 1);
        assert_eq!(l.get(2), None);
        // Truncating past the end is a no-op.
        l.truncate_from(5);
        assert_eq!(l.last_index(), 1);
    }

    #[test]
    fn range_clamps() {
        let l = log3();
        let r = l.range(2, 10);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].cmd, "b");
        assert!(l.range(4, 10).is_empty());
        assert!(l.range(3, 2).is_empty());
        assert_eq!(l.range(0, 100).len(), 3);
    }

    #[test]
    fn compaction_keeps_boundary_term() {
        let mut l = log3();
        l.compact_to(2);
        assert_eq!(l.first_index(), 3);
        assert_eq!(l.last_index(), 3);
        assert_eq!(l.term_at(2), Some(1), "boundary term retained");
        assert_eq!(l.term_at(1), None, "compacted away");
        assert_eq!(l.get(3).unwrap().cmd, "c");
        // Appending after compaction continues the index sequence.
        l.append(3, "d");
        assert_eq!(l.last_index(), 4);
    }

    #[test]
    fn compact_everything_then_append() {
        let mut l = log3();
        l.compact_to(3);
        assert!(l.is_empty());
        assert_eq!(l.last_index(), 3);
        assert_eq!(l.last_term(), 2);
        assert_eq!(l.append(4, "e"), 4);
    }

    #[test]
    fn reset_to_replaces_everything() {
        let mut l = log3();
        l.reset_to(10, 4);
        assert!(l.is_empty());
        assert_eq!(l.snapshot_index(), 10);
        assert_eq!(l.snapshot_term(), 4);
        assert_eq!(l.first_index(), 11);
        assert_eq!(l.last_index(), 10);
        assert_eq!(l.last_term(), 4);
        assert_eq!(l.term_at(10), Some(4));
        assert_eq!(l.term_at(3), None);
        assert_eq!(l.append(5, "x"), 11);
    }

    #[test]
    fn snapshot_accessors_track_compaction() {
        let mut l = log3();
        assert_eq!(l.snapshot_index(), 0);
        assert_eq!(l.snapshot_term(), 0);
        l.compact_to(2);
        assert_eq!(l.snapshot_index(), 2);
        assert_eq!(l.snapshot_term(), 1);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn push_rejects_gap() {
        let mut l = log3();
        l.push(Entry {
            term: 2,
            index: 9,
            cmd: "x",
        });
    }
}
