//! Property-based tests over the whole stack: randomized configurations,
//! seeds, and fault schedules must never violate the system's core
//! invariants (determinism, accounting sanity, replica agreement, bounded
//! reply loss).

use hovercraft::PolicyKind;
use proptest::prelude::*;
use simnet::{FaultPlan, FaultPlanConfig, SimDur, SimTime};
use testbed::{
    run_experiment_checked, summarize, Cluster, ClusterOpts, RetryPolicy, ServerAgent, Setup,
};

fn arb_setup() -> impl Strategy<Value = Setup> {
    prop_oneof![
        Just(Setup::Vanilla),
        Just(Setup::Hovercraft(PolicyKind::Random)),
        Just(Setup::Hovercraft(PolicyKind::Jbsq)),
        Just(Setup::HovercraftPp(PolicyKind::Jbsq)),
    ]
}

fn quick(setup: Setup, n: u32, rate: f64, seed: u64) -> ClusterOpts {
    let mut o = ClusterOpts::new(setup, n, rate);
    o.warmup = SimDur::millis(30);
    o.measure = SimDur::millis(100);
    o.seed = seed;
    o.clients = 2;
    o
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full cluster simulation
        parallel: true, // bodies run on the HC_JOBS pool; reporting is serial-identical
        .. ProptestConfig::default()
    })]

    /// Accounting sanity and replica agreement for arbitrary healthy
    /// configurations and seeds.
    #[test]
    fn healthy_runs_answer_everything_and_agree(
        setup in arb_setup(),
        n in prop_oneof![Just(3u32), Just(5u32)],
        rate in 10_000.0f64..150_000.0,
        seed in 0u64..1_000,
    ) {
        let mut cluster = Cluster::build(quick(setup, n, rate, seed));
        cluster.run_to_completion_checked();
        let r = summarize(&mut cluster);
        prop_assert!(r.responses <= r.sent, "{r:?}");
        prop_assert!(r.p50_ns <= r.p99_ns, "{r:?}");
        // Healthy cluster at sub-saturation load: everything answered,
        // modulo the handful of window-edge requests whose replies land
        // just after the measurement cutoff.
        prop_assert!(
            r.responses + r.nacks + 8 >= r.sent,
            "unanswered requests in a healthy run: {r:?}"
        );
        // All replicas applied the same prefix after the drain.
        cluster.run_checked(SimDur::millis(100));
        let applied: Vec<u64> = cluster
            .servers
            .clone()
            .into_iter()
            .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
            .collect();
        prop_assert!(applied.windows(2).all(|w| w[0] == w[1]), "{applied:?}");
    }

    /// Bit-exact determinism: identical (config, seed) ⇒ identical results.
    #[test]
    fn experiments_are_deterministic(
        setup in arb_setup(),
        rate in 10_000.0f64..100_000.0,
        seed in 0u64..1_000,
    ) {
        let a = run_experiment_checked(quick(setup, 3, rate, seed));
        let b = run_experiment_checked(quick(setup, 3, rate, seed));
        prop_assert_eq!(a.responses, b.responses);
        prop_assert_eq!(a.p99_ns, b.p99_ns);
        prop_assert_eq!(a.p50_ns, b.p50_ns);
        prop_assert_eq!(a.nacks, b.nacks);
    }

    /// A follower killed at a random instant under load never costs more
    /// than the bounded-queue bound in lost replies (§3.4).
    #[test]
    fn follower_death_loss_is_bounded_by_b(
        bound in prop_oneof![Just(8usize), Just(32usize), Just(128usize)],
        kill_ms in 60u64..300,
        seed in 0u64..500,
    ) {
        let mut o = quick(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 80_000.0, seed);
        o.warmup = SimDur::millis(50);
        o.measure = SimDur::millis(300);
        o.bound = bound;
        let mut cluster = Cluster::build(o);
        cluster.settle();
        let leader = cluster.leader().expect("leader");
        let victim = cluster
            .servers
            .iter()
            .copied()
            .find(|&s| s != leader)
            .expect("a follower");
        cluster.sim.kill_at(victim, SimTime::ZERO + SimDur::millis(kill_ms));
        cluster.run_to_completion_checked();
        let r = summarize(&mut cluster);
        let lost = r.sent - r.responses - r.nacks;
        // B assigned-but-unapplied replies plus the victim's in-execution
        // window can be lost; nothing else.
        prop_assert!(
            lost as usize <= bound + 32,
            "lost {lost} > bound {bound} (+32 slack)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case is a full chaos simulation
        parallel: true, // bodies run on the HC_JOBS pool; reporting is serial-identical
        .. ProptestConfig::default()
    })]

    /// Arbitrary (snapshot horizon, run length, fault plan) triples: log
    /// compaction plus chunked state transfer under randomized chaos —
    /// crash–restarts included, so transfers resume or restart across
    /// incarnation epochs — must preserve `applied ≤ commit`, the snapshot
    /// bound chain, and exactly-one-reply (all enforced continuously by
    /// the invariant checker inside the `*_checked` runners), and leave
    /// every live replica on an identical applied prefix.
    #[test]
    fn snapshot_horizons_preserve_invariants_under_chaos(
        interval in prop_oneof![Just(16u64), Just(64u64), Just(256u64)],
        measure_ms in 120u64..240,
        episodes in 1usize..=3,
        plan_seed in 0u64..10_000,
        seed in 0u64..1_000,
    ) {
        let mut o = quick(Setup::Hovercraft(PolicyKind::Jbsq), 5, 20_000.0, seed);
        o.warmup = SimDur::millis(40);
        o.measure = SimDur::millis(measure_ms);
        o.bound = 64;
        o.retry = Some(RetryPolicy::default());
        o.snapshot_interval = interval;
        o.snap_chunk_bytes = 256;
        let mut cluster = Cluster::build(o);
        cluster.settle();
        let plan = FaultPlan::generate(&FaultPlanConfig {
            nodes: cluster.servers.clone(),
            window_start: SimTime::ZERO + SimDur::millis(190),
            window_end: cluster.opts().load_end(),
            episodes,
            seed: plan_seed,
        });
        cluster.sim.apply_fault_plan(&plan);
        cluster.run_to_completion_checked();
        cluster.run_checked(SimDur::millis(250));
        let applied: Vec<u64> = cluster
            .servers
            .clone()
            .into_iter()
            .filter(|&s| cluster.sim.is_alive(s))
            .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
            .collect();
        prop_assert!(applied.len() >= 3, "a majority survived {plan:?}");
        prop_assert!(
            applied.windows(2).all(|w| w[0] == w[1]),
            "diverged at horizon {interval} after {plan:?}: {applied:?}"
        );
    }

    /// Arbitrary survivable fault plans (partitions, pauses, restarts,
    /// link faults — never cutting a majority) leave the cluster
    /// convergent, invariant-clean, and within the bounded-loss budget
    /// once client retries are on.
    #[test]
    fn survivable_fault_plans_converge_with_bounded_loss(
        episodes in 1usize..=2,
        plan_seed in 0u64..10_000,
        seed in 0u64..1_000,
    ) {
        let mut o = quick(Setup::Hovercraft(PolicyKind::Jbsq), 3, 20_000.0, seed);
        o.warmup = SimDur::millis(40);
        o.measure = SimDur::millis(160);
        o.bound = 64;
        o.retry = Some(RetryPolicy::default());
        let mut cluster = Cluster::build(o);
        cluster.settle();
        let plan = FaultPlan::generate(&FaultPlanConfig {
            nodes: cluster.servers.clone(),
            window_start: SimTime::ZERO + SimDur::millis(190),
            window_end: SimTime::ZERO + SimDur::millis(280),
            episodes,
            seed: plan_seed,
        });
        cluster.sim.apply_fault_plan(&plan);
        cluster.run_to_completion_checked();
        cluster.run_checked(SimDur::millis(200));
        let applied: Vec<u64> = cluster
            .servers
            .clone()
            .into_iter()
            .filter(|&s| cluster.sim.is_alive(s))
            .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
            .collect();
        prop_assert!(
            applied.windows(2).all(|w| w[0] == w[1]),
            "diverged after {plan:?}: {applied:?}"
        );
        let r = cluster.client_results();
        let lost = r.sent.saturating_sub(r.responses + r.nacks);
        let budget = (episodes * 64 + 64) as u64;
        prop_assert!(
            lost <= budget,
            "lost {lost} > budget {budget} under {plan:?} ({r:?})"
        );
    }
}
