//! Determinism guard: pinned trace digests for fixed chaos-corpus seeds.
//!
//! The simulator's contract is that a run is a pure function of
//! `(topology, params, seed)`. The performance work on the engine hot path
//! (lazy tracing, slab scheduling, hashed-map swaps) is only sound if it
//! preserves that function *bit-exactly* — same events, same order, same
//! timestamps. This test pins the FNV-1a digest of the full structured
//! trace stream (plus raw volume counters) for a subset of the chaos
//! corpus, captured before the optimizations landed. Any engine change
//! that reorders, drops, or retimestamps even one protocol event flips a
//! digest and fails here.
//!
//! If a digest changes because of an *intentional* protocol change (not an
//! optimization), re-pin by running:
//!
//! ```text
//! HC_PIN_DIGESTS=1 cargo test --release --test determinism_guard -- --nocapture
//! ```
//!
//! and pasting the printed table — and say why in the commit message.

use testbed::{digest_chaos_run, DigestReport};

/// (seed, digest, digested events, total recorded, engine events).
///
/// Captured on the deterministic-hash engine; every later engine change
/// must reproduce every value. (The pre-optimization engine could not pin
/// seeds 91/47571 at all: recovery paths iterated std `HashMap`s whose
/// per-process `RandomState` reordered retransmissions, so those digests
/// differed from process to process. The fixed-seed hasher swap makes the
/// whole corpus pinnable.) Seeds are drawn from `tests/chaos_corpus.txt`:
/// 1 exercises partition + restart + re-partition, 91 a minority-isolated
/// leader with a large catch-up backlog, 47571 back-to-back restarts with
/// a trace-ring-evicting re-execution burst.
const PINNED: &[(u64, DigestReport)] = &[
    (
        1,
        DigestReport {
            digest: 0xa3cf7c3867890acc,
            events: 294119,
            total_recorded: 294119,
            sim_events: 623073,
        },
    ),
    (
        91,
        DigestReport {
            digest: 0xa00be6a8873cc3f3,
            events: 282130,
            total_recorded: 282130,
            sim_events: 612899,
        },
    ),
    // Seed 47571's restart burst evicts ~1.7k events between 1 ms harvest
    // ticks, so `events < total_recorded` here — itself a pinned property.
    (
        47571,
        DigestReport {
            digest: 0xedbec569000281f5,
            events: 329441,
            total_recorded: 331157,
            sim_events: 698255,
        },
    ),
];

#[test]
fn chaos_corpus_digests_are_pinned() {
    let pin_mode = std::env::var("HC_PIN_DIGESTS")
        .map(|v| v == "1")
        .unwrap_or(false);
    if pin_mode {
        println!("const PINNED: &[(u64, DigestReport)] = &[");
    }
    let mut mismatches = Vec::new();
    for &(seed, expected) in PINNED {
        let got = digest_chaos_run(seed);
        if pin_mode {
            println!(
                "    (\n        {seed},\n        DigestReport {{\n            \
                 digest: {:#018x},\n            events: {},\n            \
                 total_recorded: {},\n            sim_events: {},\n        }},\n    ),",
                got.digest, got.events, got.total_recorded, got.sim_events
            );
            continue;
        }
        if got != expected {
            mismatches.push(format!("seed {seed}: expected {expected:x?}, got {got:x?}"));
        }
    }
    if pin_mode {
        println!("];");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "trace digests diverged from pinned baseline — the engine is no longer \
         bit-exact for these seeds:\n{}",
        mismatches.join("\n")
    );
}

/// The digest must be identical when harvested at a different cadence:
/// the fingerprint is a property of the run, not of the observer.
#[test]
fn digest_is_observer_independent() {
    let a = digest_chaos_run(7);
    let b = digest_chaos_run(7);
    assert_eq!(a, b, "same-process repeat of seed 7 diverged");
}

/// Running the same seeds inline, on a 1-worker pool, and on a 4-worker
/// pool must produce identical digest reports (digests *and* event
/// counts): each job is a self-contained single-threaded simulation, so
/// the scheduler that carried it must be unobservable in its output. This
/// is the contract the parallel figure suite and chaos sweeps rest on.
#[test]
fn pool_execution_is_digest_invariant() {
    let seeds: Vec<u64> = PINNED.iter().map(|&(seed, _)| seed).collect();
    let inline: Vec<DigestReport> = seeds.iter().map(|&s| digest_chaos_run(s)).collect();
    for workers in [1usize, 4] {
        let on_pool = pool::Pool::new(workers)
            .scope(|s| s.join_map(seeds.clone(), |_, _, seed| digest_chaos_run(seed)));
        assert_eq!(
            inline, on_pool,
            "{workers}-worker pool changed a digest report — scheduling leaked \
             into simulation output"
        );
    }
}
