//! Determinism guard: pinned trace digests for fixed chaos-corpus seeds.
//!
//! The simulator's contract is that a run is a pure function of
//! `(topology, params, seed)`. The performance work on the engine hot path
//! (lazy tracing, slab scheduling, hashed-map swaps) is only sound if it
//! preserves that function *bit-exactly* — same events, same order, same
//! timestamps. This test pins the FNV-1a digest of the full structured
//! trace stream (plus raw volume counters) for a subset of the chaos
//! corpus, captured before the optimizations landed. Any engine change
//! that reorders, drops, or retimestamps even one protocol event flips a
//! digest and fails here.
//!
//! If a digest changes because of an *intentional* protocol change (not an
//! optimization), re-pin by running:
//!
//! ```text
//! HC_PIN_DIGESTS=1 cargo test --release --test determinism_guard -- --nocapture
//! ```
//!
//! and pasting the printed table — and say why in the commit message.

use testbed::{digest_chaos_run, DigestReport};

/// (seed, digest, digested events, total recorded, engine events).
///
/// Captured on the deterministic-hash engine; every later engine change
/// must reproduce every value. (The pre-optimization engine could not pin
/// seeds 91/47571 at all: recovery paths iterated std `HashMap`s whose
/// per-process `RandomState` reordered retransmissions, so those digests
/// differed from process to process. The fixed-seed hasher swap makes the
/// whole corpus pinnable.) Seeds are drawn from `tests/chaos_corpus.txt`:
/// 1 exercises partition + restart + re-partition, 91 a minority-isolated
/// leader with a large catch-up backlog, 47571 back-to-back restarts with
/// a trace-ring-evicting re-execution burst.
const PINNED: &[(u64, DigestReport)] = &[
    (
        1,
        DigestReport {
            digest: 0xa3cf7c3867890acc,
            events: 294119,
            total_recorded: 294119,
            sim_events: 623073,
        },
    ),
    (
        91,
        DigestReport {
            digest: 0xa00be6a8873cc3f3,
            events: 282130,
            total_recorded: 282130,
            sim_events: 612899,
        },
    ),
    // Seed 47571's restart burst evicts ~1.7k events between 1 ms harvest
    // ticks, so `events < total_recorded` here — itself a pinned property.
    (
        47571,
        DigestReport {
            digest: 0xedbec569000281f5,
            events: 329441,
            total_recorded: 331157,
            sim_events: 698255,
        },
    ),
];

#[test]
fn chaos_corpus_digests_are_pinned() {
    let pin_mode = std::env::var("HC_PIN_DIGESTS")
        .map(|v| v == "1")
        .unwrap_or(false);
    if pin_mode {
        println!("const PINNED: &[(u64, DigestReport)] = &[");
    }
    let mut mismatches = Vec::new();
    for &(seed, expected) in PINNED {
        let got = digest_chaos_run(seed);
        if pin_mode {
            println!(
                "    (\n        {seed},\n        DigestReport {{\n            \
                 digest: {:#018x},\n            events: {},\n            \
                 total_recorded: {},\n            sim_events: {},\n        }},\n    ),",
                got.digest, got.events, got.total_recorded, got.sim_events
            );
            continue;
        }
        if got != expected {
            mismatches.push(format!("seed {seed}: expected {expected:x?}, got {got:x?}"));
        }
    }
    if pin_mode {
        println!("];");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "trace digests diverged from pinned baseline — the engine is no longer \
         bit-exact for these seeds:\n{}",
        mismatches.join("\n")
    );
}

/// The digest must be identical when harvested at a different cadence:
/// the fingerprint is a property of the run, not of the observer.
#[test]
fn digest_is_observer_independent() {
    let a = digest_chaos_run(7);
    let b = digest_chaos_run(7);
    assert_eq!(a, b, "same-process repeat of seed 7 diverged");
}

/// Running the same seeds inline and on pools of 1, 4, and 8 workers must
/// produce identical digest reports (digests *and* event counts): each
/// job is a self-contained single-threaded simulation, so the scheduler
/// that carried it must be unobservable in its output. This is the
/// contract the parallel figure suite and chaos sweeps rest on.
///
/// `Pool::exact` (not `Pool::new`) so the worker threads really exist:
/// `Pool::new` caps executors at the core count, and on a small machine
/// the 4- and 8-worker rows would silently degenerate to the same
/// near-serial schedule. `exact` oversubscribes on purpose — maximum
/// cross-thread interleaving pressure, every worker-count a genuinely
/// different schedule.
#[test]
fn pool_execution_is_digest_invariant() {
    let seeds: Vec<u64> = PINNED.iter().map(|&(seed, _)| seed).collect();
    let inline: Vec<DigestReport> = seeds.iter().map(|&s| digest_chaos_run(s)).collect();
    for workers in [1usize, 4, 8] {
        let on_pool = pool::Pool::exact(workers)
            .scope(|s| s.join_map(seeds.clone(), |_, _, seed| digest_chaos_run(seed)));
        assert_eq!(
            inline, on_pool,
            "{workers}-worker pool changed a digest report — scheduling leaked \
             into simulation output"
        );
    }
}

/// Trace sequence numbers must be a stable, dense property of the run
/// itself — never of the lock, the buffering, or which thread drove the
/// world. Guards the tracer's internal locking against changes that
/// would reorder or re-number events (the digest tests above would
/// catch a reorder too, but this pins the *mechanism*: dense monotone
/// seqs under eviction, identical streams across threads, and correct
/// seq accounting when clones interleave appends).
#[test]
fn trace_sequences_are_stable_and_dense() {
    use simnet::{SimTime, Tracer};

    // Same recording pattern on different threads -> identical streams.
    let record_world = || {
        let t = Tracer::new(64);
        for i in 0..200u64 {
            t.record_kv(SimTime::ZERO, (i % 5) as u32, "ev", i);
        }
        t.events()
            .iter()
            .map(|e| (e.seq, e.kind, e.key))
            .collect::<Vec<_>>()
    };
    let on_main = record_world();
    let on_worker = std::thread::spawn(record_world).join().unwrap();
    assert_eq!(
        on_main, on_worker,
        "recording thread leaked into the stream"
    );

    // Eviction keeps seqs dense and monotone: a 64-cap ring after 200
    // appends holds exactly seqs 136..=199.
    let seqs: Vec<u64> = on_main.iter().map(|&(s, _, _)| s).collect();
    assert_eq!(seqs.first(), Some(&136));
    assert_eq!(seqs.last(), Some(&199));
    for w in seqs.windows(2) {
        assert_eq!(w[1], w[0] + 1, "sequence gap inside the ring");
    }

    // Clones interleaving appends share one dense seq space, and an
    // incremental cursor over `for_each_since` sees each event once.
    let t = Tracer::new(1024);
    let t2 = t.clone();
    for i in 0..50u64 {
        if i % 2 == 0 {
            t.record_kv(SimTime::ZERO, 0, "a", i);
        } else {
            t2.record_kv(SimTime::ZERO, 1, "b", i);
        }
    }
    assert_eq!(t.total_recorded(), 50);
    let mut cursor = 0u64;
    let mut seen = Vec::new();
    while cursor < t.total_recorded() {
        t.for_each_since(cursor, |e| {
            if e.seq >= cursor {
                seen.push(e.seq);
            }
        });
        cursor = seen.last().map_or(0, |s| s + 1);
    }
    assert_eq!(seen, (0..50).collect::<Vec<u64>>());
}
