//! End-to-end state-machine-replication properties, checked through the
//! full stack (client → flow control → multicast → HovercRaft++ →
//! aggregator → service): uniqueness and monotonicity of a replicated
//! counter, replica convergence, and read linearizability.

use bytes::Bytes;
use hovercraft::{Executed, OpKind, PolicyKind, Service, WireMsg};
use r2p2::ReqIdAlloc;
use simnet::{Agent, Ctx, Packet, SimDur};
use testbed::{addrs, Cluster, ClusterOpts, ServerAgent, Setup};

/// A replicated counter: "INC" returns the post-increment value, "GET"
/// (read-only) returns the current value.
#[derive(Default)]
struct Counter {
    value: u64,
}

impl Service for Counter {
    fn execute(&mut self, body: &[u8], read_only: bool, _arena: &mut bytes::ByteArena) -> Executed {
        let reply = match body {
            b"INC" if !read_only => {
                self.value += 1;
                self.value
            }
            b"GET" => self.value,
            _ => u64::MAX,
        };
        Executed {
            reply: Bytes::from(reply.to_le_bytes().to_vec()),
            cost_ns: 500,
        }
    }
}

/// Client that records `(op, reply_value, completion_order)` tuples.
struct Recorder {
    /// (was_get, value) in completion order.
    history: Vec<(bool, u64)>,
    gets_inflight: std::collections::HashSet<r2p2::ReqId>,
    /// Responses whose body was too short to carry a `u64` counter value.
    malformed: u64,
    /// Flow-control rejections (requests that never entered the log).
    nacks: u64,
}

impl Agent<WireMsg> for Recorder {
    fn on_packet(&mut self, pkt: Packet<WireMsg>, _ctx: &mut Ctx<'_, WireMsg>) {
        match pkt.payload {
            WireMsg::Response { id, body } => {
                let Some(head) = body.get(..8) else {
                    self.malformed += 1;
                    return;
                };
                let v = u64::from_le_bytes(head.try_into().unwrap());
                let was_get = self.gets_inflight.remove(&id);
                self.history.push((was_get, v));
            }
            WireMsg::Nack { id } => {
                self.gets_inflight.remove(&id);
                self.nacks += 1;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn build_counter_cluster(setup: Setup, n: u32, seed: u64) -> (Cluster, simnet::NodeId) {
    let mut o = ClusterOpts::new(setup, n, 1_000.0);
    o.clients = 0;
    o.seed = seed;
    let mut cluster = Cluster::build(o);
    for &s in &cluster.servers.clone() {
        let agent = cluster.sim.agent_mut::<ServerAgent>(s);
        *agent.node_mut().service_mut() = Box::new(Counter::default());
    }
    cluster.settle();
    let me = cluster.sim.add_node(Box::new(Recorder {
        history: Vec::new(),
        gets_inflight: std::collections::HashSet::new(),
        malformed: 0,
        nacks: 0,
    }));
    (cluster, me)
}

/// Asserts the Recorder saw only well-formed responses and no
/// flow-control rejections — these tests drive far below capacity.
fn assert_clean_client(cluster: &Cluster, me: simnet::NodeId) {
    let rec = cluster.sim.agent::<Recorder>(me);
    assert_eq!(rec.malformed, 0, "no truncated response bodies");
    assert_eq!(rec.nacks, 0, "no flow-control NACKs under low load");
}

fn drive(cluster: &mut Cluster, me: simnet::NodeId, ops: usize, get_every: usize) {
    let mut alloc = ReqIdAlloc::new(me, 9_000);
    for i in 0..ops {
        let get = get_every > 0 && i % get_every == get_every - 1;
        let id = alloc.allocate();
        if get {
            cluster
                .sim
                .agent_mut::<Recorder>(me)
                .gets_inflight
                .insert(id);
        }
        let msg = WireMsg::Request {
            id,
            kind: if get {
                OpKind::ReadOnly
            } else {
                OpKind::ReadWrite
            },
            body: Bytes::from_static(if get { b"GET" } else { b"INC" }),
        };
        let size = msg.wire_size();
        cluster.sim.inject(me, addrs::VIP, size, msg);
        cluster.run_checked(SimDur::micros(200));
    }
    cluster.run_checked(SimDur::millis(50));
}

#[test]
fn increment_replies_are_unique_and_dense() {
    let (mut cluster, me) = build_counter_cluster(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 7);
    drive(&mut cluster, me, 200, 0);
    assert_clean_client(&cluster, me);
    let hist = &cluster.sim.agent::<Recorder>(me).history;
    assert_eq!(hist.len(), 200, "every INC answered");
    let mut values: Vec<u64> = hist.iter().map(|(_, v)| *v).collect();
    values.sort_unstable();
    let expect: Vec<u64> = (1..=200).collect();
    assert_eq!(values, expect, "INC replies are exactly 1..=200");
}

#[test]
fn reads_are_linearizable_with_interleaved_writes() {
    // Reads are totally ordered in the log (§3.5); because this client
    // issues operations one after another with generous spacing, each GET's
    // reply must equal the number of INCs issued before it.
    let (mut cluster, me) = build_counter_cluster(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 21);
    drive(&mut cluster, me, 100, 5);
    assert_clean_client(&cluster, me);
    let hist = cluster.sim.agent::<Recorder>(me).history.clone();
    assert_eq!(hist.len(), 100);
    let mut incs_before = 0u64;
    for (was_get, v) in hist {
        if was_get {
            assert_eq!(v, incs_before, "linearizable read");
        } else {
            incs_before += 1;
            assert_eq!(v, incs_before, "sequential client sees its own order");
        }
    }
}

#[test]
fn replicas_converge_to_identical_state() {
    for setup in [
        Setup::Vanilla,
        Setup::Hovercraft(PolicyKind::Jbsq),
        Setup::HovercraftPp(PolicyKind::Jbsq),
    ] {
        let (mut cluster, me) = build_counter_cluster(setup, 3, 3);
        if setup == Setup::Vanilla {
            // Vanilla clients target the leader directly.
            let leader = cluster.leader().unwrap();
            let mut alloc = ReqIdAlloc::new(me, 9_000);
            for _ in 0..50 {
                let msg = WireMsg::Request {
                    id: alloc.allocate(),
                    kind: OpKind::ReadWrite,
                    body: Bytes::from_static(b"INC"),
                };
                let size = msg.wire_size();
                cluster
                    .sim
                    .inject(me, simnet::Addr::node(leader), size, msg);
                cluster.run_checked(SimDur::micros(200));
            }
            cluster.run_checked(SimDur::millis(50));
        } else {
            drive(&mut cluster, me, 50, 0);
        }
        assert_clean_client(&cluster, me);
        let values: Vec<u64> = cluster
            .servers
            .clone()
            .into_iter()
            .map(|s| {
                let agent = cluster.sim.agent_mut::<ServerAgent>(s);
                let r = agent.node_mut().service_mut().execute(
                    b"GET",
                    true,
                    &mut bytes::ByteArena::new(),
                );
                u64::from_le_bytes(r.reply[..8].try_into().unwrap())
            })
            .collect();
        assert_eq!(values, vec![50, 50, 50], "{setup:?} replicas agree");
    }
}

#[test]
fn read_only_ops_do_not_execute_everywhere() {
    let (mut cluster, me) = build_counter_cluster(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 5);
    drive(&mut cluster, me, 90, 3); // 60 INC, 30 GET
    assert_clean_client(&cluster, me);
    let mut executed = 0u64;
    let mut skipped = 0u64;
    for &s in &cluster.servers.clone() {
        let st = cluster.sim.agent::<ServerAgent>(s).node().stats();
        executed += st.executed;
        skipped += st.ro_skipped;
    }
    // 60 writes × 3 replicas + 30 reads × 1 replica.
    assert_eq!(executed, 60 * 3 + 30, "reads execute exactly once");
    assert_eq!(skipped, 30 * 2, "and are skipped on the other replicas");
}
