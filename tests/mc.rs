//! Model-checker harness tests: the debug-tractable slice of the `mc`
//! crate's guarantees.
//!
//! The full exhaustive runs (five presets, ~2.8M states total) live in
//! the CI `mc` job, which runs the release `mc_explore` binary and
//! compares the explored-state digest against `tests/mc_digest.txt`.
//! This file pins what must also hold under plain `cargo test`:
//!
//! * the `tiny` scope exhausts to a *pinned* state count (a silent
//!   shrink of the search space — a lost action, an over-eager state
//!   merge — fails here, not just in CI);
//! * the mutation smoke test: deliberately breaking one invariant
//!   predicate makes the checker produce a counterexample, and that
//!   counterexample round-trips through the `mc:` corpus format;
//! * every `mc:` seed committed to `tests/chaos_corpus.txt` replays
//!   with its recorded expectation (green, or violating at the final
//!   action for `+mut-` seeds);
//! * the node-id symmetry canonicalization actually identifies mirror
//!   states (and keeps truly distinct states apart).

use mc::{explore, fingerprint, replay, CorpusSeed, Limits, McAction, ModelState, Scope};
use testbed::invariants::predicates::Mutation;

fn no_limits() -> Limits {
    Limits {
        max_states: 1_000_000,
        symmetry: false,
    }
}

/// The `tiny` scope's exhaustive state count, pinned. If a model or
/// protocol change moves this number, re-measure *all* scope counts
/// (CI's digest will also fail) and update `tests/mc_digest.txt`
/// alongside this constant — the point is that the search space cannot
/// shrink silently.
const TINY_STATES: usize = 467;

#[test]
fn tiny_scope_exhausts_with_pinned_state_count() {
    let scope = Scope::tiny_scope();
    let report = explore(&scope, Mutation::None, no_limits());
    assert!(report.complete, "tiny scope must exhaust");
    assert!(
        report.violation.is_none(),
        "tiny scope must be violation-free: {:?}",
        report.violation.map(|v| v.violation)
    );
    assert_eq!(
        report.explored, TINY_STATES,
        "explored-state count drifted; see the pinning comment"
    );
    // Symmetry canonicalization may merge mirror states but must never
    // invent new ones, and on an exhausted space it must also find no
    // violation.
    let sym = explore(
        &scope,
        Mutation::None,
        Limits {
            symmetry: true,
            ..no_limits()
        },
    );
    assert!(sym.complete && sym.violation.is_none());
    assert!(
        sym.explored <= report.explored,
        "symmetry must only merge states ({} > {})",
        sym.explored,
        report.explored
    );
}

/// Satellite: the mutation smoke test. Breaking invariant 4's predicate
/// (legal replier stamps are reported as violations) must yield a
/// counterexample within a bounded number of states, and that
/// counterexample must be a deterministic, replayable `mc:` corpus seed
/// that (a) violates at exactly its final action under the mutation and
/// (b) replays green without it — proving the checker, not the
/// protocol, produced the trace.
#[test]
fn mutation_smoke_produces_replayable_counterexample() {
    let scope = Scope::tiny_scope();
    let report = explore(&scope, Mutation::BreakReplierImmutability, no_limits());
    let cex = report
        .violation
        .expect("mutated predicate must produce a counterexample");
    assert!(
        report.explored <= TINY_STATES,
        "counterexample must surface within the bounded space"
    );
    // BFS finds a shortest trace: announcing the first command stamps a
    // replier, which the mutation flags — one action.
    assert_eq!(cex.trace, vec![McAction::ClientReq]);
    assert_eq!(cex.corpus_line(), "mc:tiny+mut-replier:q");

    // Round-trip through the corpus format.
    let seed = CorpusSeed::parse(&cex.corpus_line())
        .expect("an mc: line")
        .expect("parses");
    seed.verify().expect("mutation seed verifies");

    // The same trace is green without the mutation.
    replay(&scope, Mutation::None, &cex.trace)
        .expect("mutation counterexample replays clean without the mutation");

    // The human-readable rendering names the violated invariant and the
    // corpus line.
    let rendered = cex.render(&scope);
    assert!(rendered.contains("replier immutability"), "{rendered}");
    assert!(rendered.contains("mc:tiny+mut-replier:q"), "{rendered}");
}

/// Every committed `mc:` corpus seed replays with its recorded
/// expectation, exactly like the chaos seeds replay their fault plans.
#[test]
fn committed_mc_corpus_seeds_verify() {
    let seeds = mc::parse_corpus(include_str!("chaos_corpus.txt")).expect("corpus parses");
    assert!(
        seeds.len() >= 3,
        "mc corpus unexpectedly small: {} seeds",
        seeds.len()
    );
    let mut mutated = 0;
    for seed in &seeds {
        seed.verify().unwrap_or_else(|e| {
            panic!("mc seed (scope {}) failed: {e}", seed.scope.name);
        });
        if seed.mutation != Mutation::None {
            mutated += 1;
        }
    }
    assert!(
        mutated >= 1,
        "corpus must pin at least one mutation counterexample"
    );
}

/// A greedy "always take the first enabled action" schedule of the tiny
/// scope runs to quiescence: the wires drain, the command is committed,
/// executed, and answered exactly once. Termination itself is the
/// assertion — a scheduling loop that never drains would spin past the
/// step bound.
#[test]
fn greedy_schedule_reaches_quiescence() {
    let scope = Scope::tiny_scope();
    let mut state = ModelState::init(&scope);
    let mut trace = Vec::new();
    for _ in 0..200 {
        // Skip the fault actions (Duplicate/Drop) so the greedy run is
        // the clean fast path; Deliver comes before them in canonical
        // order, ClientReq before everything.
        let Some(&act) = state
            .enabled(&scope)
            .iter()
            .find(|a| matches!(a, McAction::ClientReq | McAction::Deliver(_)))
        else {
            break;
        };
        let pre = state.clone();
        state
            .apply(&scope, act, Mutation::None)
            .expect("no violation");
        state
            .check_invariants(&pre, &scope, Mutation::None)
            .expect("no violation");
        trace.push(act);
    }
    assert_eq!(state.net_len(), 0, "wires must drain");
    assert_eq!(state.reply_count(), 1, "exactly one reply");
    // The recorded schedule is itself a valid green trace.
    replay(&scope, Mutation::None, &trace).expect("greedy trace replays green");
}

/// The symmetry canonicalization identifies true mirror states: in the
/// `elect` scope both candidates are configured identically, so "node 0
/// ticked first" and "node 1 ticked first" are the same state up to the
/// id renaming. Plain fingerprints must differ; symmetric ones must
/// coincide.
#[test]
fn symmetric_fingerprints_identify_mirror_states() {
    let scope = Scope::elect_scope();
    let mut a = ModelState::init(&scope);
    let mut b = ModelState::init(&scope);
    a.apply(&scope, McAction::Tick(0), Mutation::None).unwrap();
    b.apply(&scope, McAction::Tick(1), Mutation::None).unwrap();
    assert_ne!(
        fingerprint(&a, &scope, false),
        fingerprint(&b, &scope, false),
        "mirror states are physically distinct"
    );
    assert_eq!(
        fingerprint(&a, &scope, true),
        fingerprint(&b, &scope, true),
        "mirror states share a canonical fingerprint"
    );
    // Sanity: canonicalization must not collapse genuinely different
    // states — one tick versus none.
    assert_ne!(
        fingerprint(&ModelState::init(&scope), &scope, true),
        fingerprint(&a, &scope, true)
    );
}

/// Corpus-format hygiene: action tokens round-trip and malformed lines
/// are rejected with a diagnostic instead of a panic.
#[test]
fn corpus_format_round_trips_and_rejects_garbage() {
    for (tok, act) in [
        ("q", McAction::ClientReq),
        ("d3", McAction::Deliver(3)),
        ("u0", McAction::Duplicate(0)),
        ("x1", McAction::Drop(1)),
        ("t2", McAction::Tick(2)),
        ("c1", McAction::Crash(1)),
        ("r1", McAction::Restart(1)),
    ] {
        assert_eq!(McAction::parse(tok), Some(act));
        assert_eq!(act.to_string(), tok);
    }
    assert_eq!(McAction::parse("z9"), None);

    assert!(
        CorpusSeed::parse("47571").is_none(),
        "chaos seeds are not mc seeds"
    );
    assert!(CorpusSeed::parse("snap:55").is_none());
    assert!(CorpusSeed::parse("mc:default:q.d0")
        .expect("mc line")
        .is_ok());
    for bad in [
        "mc:nosuch:q",            // unknown scope
        "mc:default+mut-bogus:q", // unknown mutation
        "mc:default:zz",          // bad token
        "mc:default:",            // empty trace
        "mc:default",             // missing separator
    ] {
        assert!(
            CorpusSeed::parse(bad).expect("mc line").is_err(),
            "{bad:?} must be rejected"
        );
    }
}
