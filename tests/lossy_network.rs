//! Packet-loss integration tests: HovercRaft does not assume reliable
//! multicast (§5) — lost request copies are repaired by the recovery
//! protocol, lost consensus messages by Raft's own retransmission, and the
//! system keeps its SMR guarantees throughout.

use hovercraft::PolicyKind;
use simnet::SimDur;
use testbed::{summarize, Cluster, ClusterOpts, ServerAgent, Setup};

fn lossy_run(setup: Setup, loss: f64, rate: f64, seed: u64) -> (testbed::ExpResult, u64, u64) {
    let mut o = ClusterOpts::new(setup, 3, rate);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(300);
    o.seed = seed;
    let mut cluster = Cluster::build(o);
    cluster.sim.set_loss_rate(loss);
    cluster.run_to_completion_checked();
    let mut recoveries = 0;
    let mut served = 0;
    for &s in &cluster.servers.clone() {
        let st = cluster.sim.agent::<ServerAgent>(s).node().stats();
        recoveries += st.recoveries_sent;
        served += st.recoveries_served;
    }
    (summarize(&mut cluster), recoveries, served)
}

#[test]
fn one_percent_loss_triggers_recovery_but_service_continues() {
    let (r, recoveries, served) =
        lossy_run(Setup::Hovercraft(PolicyKind::Jbsq), 0.01, 50_000.0, 31);
    assert!(recoveries > 0, "multicast gaps must exercise recovery");
    assert!(served > 0, "peers must serve recovered bodies");
    // Replies themselves can be lost to the client (at-most-once), but the
    // overwhelming majority completes.
    assert!(
        r.responses as f64 > 0.95 * r.sent as f64,
        "answered {}/{} with {} recoveries",
        r.responses,
        r.sent,
        recoveries
    );
}

#[test]
fn five_percent_loss_still_makes_progress() {
    let (r, recoveries, _) = lossy_run(Setup::Hovercraft(PolicyKind::Jbsq), 0.05, 20_000.0, 37);
    assert!(recoveries > 0);
    assert!(
        r.responses as f64 > 0.85 * r.sent as f64,
        "answered {}/{}",
        r.responses,
        r.sent
    );
}

#[test]
fn hovercraft_pp_handles_loss_of_aggregator_traffic() {
    // Loss hits AppendEntries to/from the aggregator and AGG_COMMITs too;
    // heartbeat retransmission and the pending-flag path (§6.4) cover it.
    let (r, _, _) = lossy_run(Setup::HovercraftPp(PolicyKind::Jbsq), 0.02, 30_000.0, 41);
    assert!(
        r.responses as f64 > 0.9 * r.sent as f64,
        "answered {}/{}",
        r.responses,
        r.sent
    );
}

#[test]
fn replicas_converge_despite_loss() {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 30_000.0);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(200);
    o.seed = 43;
    let mut cluster = Cluster::build(o);
    cluster.sim.set_loss_rate(0.03);
    cluster.run_to_completion_checked();
    // Lossless drain so everyone catches up.
    cluster.sim.set_loss_rate(0.0);
    cluster.run_checked(SimDur::millis(100));
    let applied: Vec<u64> = cluster
        .servers
        .clone()
        .into_iter()
        .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
        .collect();
    assert!(applied[0] > 0);
    assert_eq!(applied[0], applied[1], "{applied:?}");
    assert_eq!(applied[1], applied[2], "{applied:?}");
}
