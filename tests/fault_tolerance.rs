//! Failure-mode integration tests across the full stack: follower and
//! leader fail-stop under load, bounded reply loss, and in-network
//! aggregator failure with fallback to point-to-point Raft (§5, §7.4).

use hovercraft::PolicyKind;
use simnet::{SimDur, SimTime};
use testbed::{summarize, ClientAgent, Cluster, ClusterOpts, FcProgram, ServerAgent, Setup};

fn opts(setup: Setup, n: u32, rate: f64, bound: usize, seed: u64) -> ClusterOpts {
    let mut o = ClusterOpts::new(setup, n, rate);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(400);
    o.bound = bound;
    o.seed = seed;
    o
}

#[test]
fn follower_failure_is_invisible_except_bounded_loss() {
    let o = opts(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 100_000.0, 32, 11);
    let mut cluster = Cluster::build(o.clone());
    cluster.settle();
    let leader = cluster.leader().unwrap();
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .unwrap();
    // Kill one follower in the middle of the measured window.
    cluster
        .sim
        .kill_at(victim, SimTime::ZERO + SimDur::millis(300));
    cluster.run_to_completion_checked();
    let r = summarize(&mut cluster);
    // 40k measured requests; replies already assigned to the victim when it
    // died (≤ B = 32) plus its committed-but-unexecuted window are lost;
    // everything else must be answered.
    let lost = r.sent - r.responses - r.nacks;
    assert!(lost <= 64, "lost {lost} replies, expected ≲ B");
    assert!(r.achieved_rps > 95_000.0, "{r:?}");
}

#[test]
fn leader_failure_degrades_gracefully_and_recovers() {
    let o = opts(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 80_000.0, 32, 13);
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let old = cluster.leader().unwrap();
    cluster
        .sim
        .kill_at(old, SimTime::ZERO + SimDur::millis(250));
    cluster.run_to_completion_checked();
    let new = cluster.leader().expect("new leader");
    assert_ne!(new, old);
    let r = summarize(&mut cluster);
    // Election (10-20ms) plus ≤B lost replies out of 32k measured requests:
    // at least ~90% still answered.
    assert!(
        r.responses as f64 > 0.9 * r.sent as f64,
        "answered {}/{}",
        r.responses,
        r.sent
    );
    // Survivors converge.
    let survivors: Vec<u64> = cluster
        .servers
        .clone()
        .into_iter()
        .filter(|&s| cluster.sim.is_alive(s))
        .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
        .collect();
    assert_eq!(survivors.len(), 2);
    assert!(survivors[0].abs_diff(survivors[1]) < 10, "{survivors:?}");
}

#[test]
fn aggregator_failure_falls_back_to_point_to_point() {
    // Blackhole the aggregator mid-run: AppendEntries routed through it
    // vanish, followers stop hearing from the leader, an election fires,
    // the new leader's VoteProbe goes unanswered, and the cluster continues
    // in plain point-to-point HovercRaft (§5).
    let o = opts(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 50_000.0, 128, 17);
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let t_fail = SimTime::ZERO + SimDur::millis(250);
    cluster.run_until_checked(t_fail);
    // From now on, nothing addressed to the aggregator gets through.
    cluster.fail_aggregator();
    cluster.run_to_completion_checked();
    let leader = cluster.leader().expect("a leader exists");
    let node = cluster.sim.agent::<ServerAgent>(leader).node();
    assert!(
        !node.aggregator_confirmed(),
        "leader must not trust a dead aggregator"
    );
    let r = summarize(&mut cluster);
    // Some requests are lost around the election; the vast majority of the
    // 20k measured requests complete over the direct path.
    assert!(
        r.responses as f64 > 0.85 * r.sent as f64,
        "answered {}/{}",
        r.responses,
        r.sent
    );
}

#[test]
fn whole_cluster_survives_f_failures_but_not_more() {
    // 5 nodes tolerate 2 failures; a third stops progress entirely.
    let o = opts(Setup::Hovercraft(PolicyKind::Jbsq), 5, 40_000.0, 64, 19);
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let leader = cluster.leader().unwrap();
    let followers: Vec<u32> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| s != leader)
        .collect();
    cluster
        .sim
        .kill_at(followers[0], SimTime::ZERO + SimDur::millis(200));
    cluster
        .sim
        .kill_at(followers[1], SimTime::ZERO + SimDur::millis(220));
    cluster.run_to_completion_checked();
    let r = summarize(&mut cluster);
    assert!(
        r.responses as f64 > 0.85 * r.sent as f64,
        "2 of 5 dead is fine: {}/{}",
        r.responses,
        r.sent
    );

    // Now a fresh cluster where 3 of 5 die: no quorum, no progress.
    let o = opts(Setup::Hovercraft(PolicyKind::Jbsq), 5, 40_000.0, 64, 23);
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let t = SimTime::ZERO + SimDur::millis(160);
    let leader = cluster.leader().unwrap();
    let mut killed = 0;
    for &s in &cluster.servers.clone() {
        if s != leader && killed < 2 {
            cluster.sim.kill_at(s, t);
            killed += 1;
        }
    }
    cluster.sim.kill_at(leader, t);
    cluster.run_to_completion_checked();
    // Completions only for requests finished before the kill (measurement
    // starts at 200ms > kill at 160ms → none).
    let clients = cluster.clients.clone();
    let mut responses = 0;
    for &c in &clients {
        responses += cluster.sim.agent_mut::<ClientAgent>(c).results().responses;
    }
    assert_eq!(responses, 0, "no quorum, no commits, no replies");
}

#[test]
fn leader_death_does_not_wedge_flow_control() {
    // The Figure 12 scenario with a deliberately tight admission cap:
    // killing the leader strands its assigned-but-unanswered requests, and
    // during the election no FEEDBACK flows at all, so the in-flight gauge
    // pins at the cap and admission wedges. Without slot reclamation the
    // middlebox NACKs every request for the rest of time; with it, the
    // stranded slots age out and service resumes after the election.
    let mut o = opts(Setup::HovercraftPp(PolicyKind::Jbsq), 3, 80_000.0, 32, 29);
    o.flow_cap = Some(48);
    let mut cluster = Cluster::build(o);
    cluster.settle();
    let old = cluster.leader().unwrap();
    cluster
        .sim
        .kill_at(old, SimTime::ZERO + SimDur::millis(250));
    cluster.run_to_completion_checked();
    assert_ne!(cluster.leader().expect("new leader"), old);

    let idx = cluster.fc_prog_index().expect("flow control deployed");
    let fc = &cluster.sim.switch_program_mut::<FcProgram>(idx).fc;
    let st = fc.stats();
    assert!(
        st.reclaimed > 0,
        "stranded slots must be reclaimed after the leader kill: {st:?}"
    );
    assert!(
        fc.in_flight() < 48,
        "admission must not stay wedged at the cap: in_flight={}",
        fc.in_flight()
    );

    // The bulk of the measured window is after the kill; most of it must
    // still be answered once admission recovers.
    let r = summarize(&mut cluster);
    assert!(
        r.responses as f64 > 0.6 * r.sent as f64,
        "service must resume after reclamation: answered {}/{} ({} nacked)",
        r.responses,
        r.sent,
        r.nacks
    );
}
