//! Chaos property suite: deterministic, seeded fault injection across the
//! full stack. Scenario tests pin down the three headline behaviours —
//! majority-side progress under partition with Pre-Vote term stability,
//! stall-aware replier routing around a paused node (§3.4), and
//! crash–restart rejoin via log catch-up plus body recovery (§5) — while
//! randomized [`FaultPlan`]s (env-scalable via `CHAOS_CASES` /
//! `CHAOS_SEED`) and a committed seed corpus sweep the space, sharded
//! across cores by the workspace pool (`HC_JOBS`; each seed is one
//! single-threaded deterministic simulation). Every run is replayable
//! from `(opts, seed)` alone; a meta-test proves it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hovercraft::PolicyKind;
use simnet::{FaultPlan, FaultPlanConfig, SimDur, SimTime, TraceEvent};
use testbed::invariants::predicates;
use testbed::{Cluster, ClusterOpts, RetryPolicy, ServerAgent, Setup};

fn ms(x: u64) -> SimTime {
    SimTime::ZERO + SimDur::millis(x)
}

/// The standard chaos point: 5-way HovercRaft under moderate load with
/// client retries on, so requests survive the faults they straddle.
/// Load runs 150–500 ms (50 ms warm-up, 300 ms measured).
fn chaos_opts(seed: u64) -> ClusterOpts {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 5, 25_000.0);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(300);
    o.bound = 64;
    o.retry = Some(RetryPolicy::default());
    o.seed = seed;
    o
}

/// The snapshot chaos point: the standard chaos cluster plus an aggressive
/// compaction horizon (snapshot every 64 applied entries ≈ every 2.5 ms at
/// this load) and deliberately small transfer chunks, so the framed blob
/// (service state plus the covered-id dedupe set) still crosses the wire
/// in several stop-and-wait round trips. Any node that falls behind by
/// more than a couple of milliseconds finds the bodies it needs compacted
/// everywhere and must take the snapshot state-transfer path — which the
/// fault window then kills, partitions, and pauses mid-stream.
fn snap_chaos_opts(seed: u64) -> ClusterOpts {
    let mut o = chaos_opts(seed);
    o.snapshot_interval = 64;
    // Small enough that every transfer takes several stop-and-wait round
    // trips (so chaos can hit it mid-stream), large enough that a full
    // transfer finishes well inside one 64-entry compaction period at
    // 25 krps — the blob carries the covered-id set, so a byte-sized chunk
    // would make transfers slower than compaction and livelock catch-up.
    o.snap_chunk_bytes = 256;
    o
}

fn term_of(cluster: &Cluster, node: u32) -> u64 {
    cluster.sim.agent::<ServerAgent>(node).node().raft().term()
}

fn commit_of(cluster: &Cluster, node: u32) -> u64 {
    cluster
        .sim
        .agent::<ServerAgent>(node)
        .node()
        .raft()
        .commit_index()
}

/// All live replicas applied the same prefix.
fn assert_converged(cluster: &Cluster) {
    let applied: Vec<u64> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| cluster.sim.is_alive(s))
        .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
        .collect();
    assert!(
        predicates::converged_ok(&applied),
        "live replicas diverged after drain: {applied:?}"
    );
}

/// Every live replica's state-machine content is bit-identical — the
/// "restored/transferred node equals a replaying reference" check: the
/// nodes that never crashed *are* the replaying reference, so a node that
/// rejoined via snapshot transfer must serialize the exact same state.
fn assert_state_identical(cluster: &Cluster) {
    let states: Vec<(u32, Vec<u8>)> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| cluster.sim.is_alive(s))
        .map(|s| {
            let n = cluster.sim.agent::<ServerAgent>(s).node();
            (s, n.service().snapshot().to_vec())
        })
        .collect();
    let blobs: Vec<Vec<u8>> = states.iter().map(|(_, b)| b.clone()).collect();
    if !predicates::states_identical_ok(&blobs) {
        let (ref_node, ref_state) = &states[0];
        let (s, _) = states[1..]
            .iter()
            .find(|(_, b)| b != ref_state)
            .expect("a diverging replica");
        panic!("n{s} state diverges from replaying reference n{ref_node}");
    }
}

#[test]
fn majority_partition_keeps_committing_and_pre_vote_freezes_terms() {
    let mut cluster = Cluster::build(chaos_opts(101));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let term0 = term_of(&cluster, leader);

    // Cut off two followers; the leader keeps a quorum of three.
    let minority: Vec<u32> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| s != leader)
        .take(2)
        .collect();
    let majority: Vec<u32> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| !minority.contains(&s))
        .collect();
    cluster.sim.partition_at(vec![majority, minority], ms(250));
    cluster.sim.heal_at(ms(400));

    cluster.run_until_checked(ms(280));
    let c1 = commit_of(&cluster, leader);
    cluster.run_until_checked(ms(380));
    let c2 = commit_of(&cluster, leader);
    assert!(
        c2 > c1 + 1_000,
        "majority side must keep committing through the partition: {c1} -> {c2}"
    );

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    cluster.run_checked(SimDur::millis(150));

    // Pre-Vote: the healed minority's election attempts never reached a
    // quorum and never bumped terms, so the stable leader is undisturbed.
    assert_eq!(
        cluster.leader(),
        Some(leader),
        "healed minority must not depose the stable leader"
    );
    assert_eq!(
        term_of(&cluster, leader),
        term0,
        "no term change across partition + heal"
    );
    assert_converged(&cluster);
}

#[test]
fn paused_replier_is_detected_and_routed_around() {
    let mut cluster = Cluster::build(chaos_opts(202));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    let paused_at = ms(250);
    let resumed_at = ms(420);
    cluster.sim.pause_at(victim, paused_at);
    cluster.sim.resume_at(victim, resumed_at);

    // Harvest the trace incrementally (the ring is bounded) while running
    // the full load under invariant checking.
    let mut cursor = 0u64;
    let mut harvested: Vec<TraceEvent> = Vec::new();
    let end = cluster.opts().load_end() + SimDur::millis(20);
    while cluster.sim.now() < end {
        let next = (cluster.sim.now() + SimDur::millis(5)).min(end);
        cluster.run_until_checked(next);
        let events = cluster.tracer().events_since(cursor);
        if let Some(last) = events.last() {
            cursor = last.seq + 1;
        }
        harvested.extend(events);
    }
    cluster.run_checked(SimDur::millis(150));
    harvested.extend(cluster.tracer().events_since(cursor));

    // Within the stall-detection timeout (5 ms, plus announcement slack)
    // the leader must stop assigning replies to the silent node, and not
    // resume until the node is back.
    let grace = paused_at + SimDur::millis(15);
    let marker = format!("replier=n{victim}");
    let bad: Vec<&TraceEvent> = harvested
        .iter()
        .filter(|e| {
            e.kind == "replier_assigned"
                && e.at >= grace
                && e.at < resumed_at
                && e.detail.to_text().ends_with(&marker)
        })
        .collect();
    assert!(
        bad.is_empty(),
        "leader kept assigning replies to a stalled node: {bad:?}"
    );
    assert!(
        harvested
            .iter()
            .any(|e| e.kind == "replier_stalled" && e.key == victim as u64 && e.at < grace),
        "stall must be detected and traced within the timeout"
    );
    assert!(
        harvested
            .iter()
            .any(|e| e.kind == "replier_recovered" && e.key == victim as u64 && e.at >= resumed_at),
        "resumed node must re-enter the candidate set"
    );
    assert_converged(&cluster);
}

#[test]
fn restarted_follower_rejoins_and_catches_up() {
    let mut cluster = Cluster::build(chaos_opts(303));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    cluster.sim.restart_at(victim, ms(300));

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    assert_eq!(cluster.sim.restarts(victim), 1, "exactly one crash–restart");
    assert!(cluster.sim.is_alive(victim), "restarted node is back");

    // Drain: log catch-up, body recovery for unpooled entries, and
    // re-execution from index 1 all complete within the run.
    cluster.run_checked(SimDur::millis(200));
    let leader_now = cluster.leader().expect("a leader at the end");
    let applied_leader = cluster
        .sim
        .agent::<ServerAgent>(leader_now)
        .node()
        .applied_index();
    let applied_victim = cluster
        .sim
        .agent::<ServerAgent>(victim)
        .node()
        .applied_index();
    assert!(applied_leader > 0, "the run made progress");
    assert_eq!(
        applied_victim, applied_leader,
        "restarted follower must fully catch up"
    );
    assert_converged(&cluster);
}

/// The tentpole recovery scenario, pinned deterministically: a follower
/// fail-stops long enough that the leader's compaction horizon passes its
/// entire log (rejoin *must* go through chunked snapshot state transfer,
/// not log catch-up), and is then crashed again mid-stream — between two
/// cumulative chunk acks. The transfer must rewind across the incarnation
/// boundary and still converge to a state bit-identical to the replaying
/// replicas.
#[test]
fn state_transfer_resumes_after_midstream_crash() {
    let mut cluster = Cluster::build(snap_chaos_opts(404));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");

    // 70 ms down at 25 krps with a 64-entry snapshot horizon: the leader
    // compacts ~27 intervals past the victim's log end while it is dark.
    cluster.sim.kill_at(victim, ms(250));
    cluster.sim.restart_at(victim, ms(320));
    cluster.run_until_checked(ms(320));

    // Step at 10 µs granularity until the transfer is streaming (the
    // victim cumulatively acks chunks), then crash it again mid-stream.
    let mut cursor = 0u64;
    let mut crash_at: Option<SimTime> = None;
    let deadline = ms(360);
    'hunt: while cluster.sim.now() < deadline {
        cluster.sim.run_for(SimDur::micros(10));
        for e in cluster.tracer().events_since(cursor) {
            cursor = e.seq + 1;
            if e.kind == "chunk_acked" && e.node == victim {
                let t = cluster.sim.now() + SimDur::micros(10);
                cluster.sim.restart_at(victim, t);
                crash_at = Some(t);
                break 'hunt;
            }
        }
        cluster.assert_invariants();
    }
    let crash_at = crash_at.expect("state transfer never started streaming after rejoin");

    // Harvest the rest of the run incrementally (the trace ring is
    // bounded) under invariant checking.
    let mut harvested: Vec<TraceEvent> = Vec::new();
    let end = cluster.opts().load_end() + SimDur::millis(20);
    while cluster.sim.now() < end {
        let next = (cluster.sim.now() + SimDur::millis(5)).min(end);
        cluster.run_until_checked(next);
        let events = cluster.tracer().events_since(cursor);
        if let Some(last) = events.last() {
            cursor = last.seq + 1;
        }
        harvested.extend(events);
    }
    cluster.run_checked(SimDur::millis(200));
    harvested.extend(cluster.tracer().events_since(cursor));

    assert_eq!(
        cluster.sim.restarts(victim),
        2,
        "rejoin restart plus the mid-stream crash"
    );
    assert!(
        harvested
            .iter()
            .any(|e| e.kind == "snapshot_installed" && e.node == victim && e.at > crash_at),
        "the victim's final incarnation must complete a snapshot install"
    );
    let vstats = cluster.sim.agent::<ServerAgent>(victim).node().stats();
    assert!(
        vstats.installs >= 1,
        "rejoined follower must install a transferred snapshot: {vstats:?}"
    );
    assert_converged(&cluster);
    assert_state_identical(&cluster);
}

// ---------------------------------------------------------------------
// Chaos-found bugs, promoted to named regression tests. Each replays,
// unchanged, the seeded fault plan that first exposed the bug during the
// snapshot/compaction work (the same seeds stay in tests/chaos_corpus.txt
// for the sweep; the named anchors keep the diagnosis greppable next to
// the code that fixes it). All run at the snapshot chaos point and
// inherit `run_snapshot_chaos_case`'s asserts: the full invariant set at
// every sampled millisecond, convergence, bit-identical state machines,
// compaction actually running, and bounded client-visible reply loss.
// ---------------------------------------------------------------------

/// snap:8 — stale-completion applied regression. A restart of n1 at
/// 228 ms plus a delay spike into the rejoiner during catch-up left an
/// entry executing on the app thread while a snapshot install jumped the
/// applied cursor past it; the entry's late completion then moved
/// `applied` *backwards* (tripping monotonicity and re-answering a voided
/// reply duty). Fixed by the `index <= self.applied` guard in
/// `HcNode::on_exec_done`: completions at or below the cursor are
/// subsumed by the restored snapshot and dropped.
#[test]
fn regression_snap8_stale_completion_must_not_regress_applied() {
    run_snapshot_chaos_case(8);
}

/// snap:13 — unhealable rejoined node. A follower mid-state-transfer
/// receives no AppendEntries (nothing can be built for it below the
/// serving peer's compaction horizon), so its election timer fired and it
/// called an election against a healthy leader from a log still behind
/// the horizon — deposing progress it could not replace. Fixed by
/// `RaftNode::note_peer_contact`: a snapshot chunk from *any* serving
/// peer resets the follower's election deadline (without planting a
/// leader hint or asserting leadership on the sender's behalf).
#[test]
fn regression_snap13_rejoiner_mid_transfer_must_not_depose_leader() {
    run_snapshot_chaos_case(13);
}

/// snap:34 — two bugs in one plan (pause + partition + a 33% duplicate
/// window). First, issue-cursor/applied skew: snapshot blobs are captured
/// at issue time while the service executes ahead of `applied`, so
/// promoting or installing against `applied` could wipe the effects of
/// entries already executing; installs now guard on the issue cursor
/// (`next_apply`) instead. Second, the `term_at(0)` sentinel wedge: a
/// retransmit reset below the compaction horizon saw `term_at(0) ==
/// Some(0)` on a compacted log and degenerated into an empty
/// AppendEntries loop that never shipped an entry and never requested a
/// snapshot; replication now checks `next < log.first_index()` explicitly
/// and parks the peer behind a `NeedsSnapshot`.
#[test]
fn regression_snap34_install_guards_issue_cursor_and_compacted_sentinel() {
    run_snapshot_chaos_case(34);
}

/// snap:55 — double execution across a snapshot install. A node that
/// installed a snapshot held parked unordered copies of requests the
/// snapshot had already ordered and executed (its own log could not
/// enumerate them); when it later won an election it re-proposed one,
/// executing it twice. Fixed by framing the covered request-id set into
/// the snapshot blob: installers seed those ids as dedupe tombstones and
/// purge the parked copies, so a later leadership change cannot resurrect
/// a covered request.
#[test]
fn regression_snap55_install_seeds_dedupe_tombstones_for_covered_ids() {
    run_snapshot_chaos_case(55);
}

/// The transfer-livelock regression, pinned as a deterministic scenario
/// rather than a seed: with chunking slow enough that streaming one
/// snapshot takes longer than one compaction interval, the serving side
/// used to abandon the stream at every new horizon — no transfer ever
/// completed and the rejoiner never caught up. The fix pins the outgoing
/// blob for the lifetime of a transfer (`OutXfer.snap`): a started
/// stream runs to completion at its original horizon even as the sender
/// compacts past it, the install jumps the rejoiner forward, and a
/// follow-up transfer (or plain log catch-up once load stops) covers the
/// remainder. Chunks here are 8 bytes against the standard 256, so a
/// full blob takes hundreds of stop-and-wait round trips — several
/// compaction intervals' worth while load is running.
#[test]
fn regression_transfer_slower_than_compaction_still_converges() {
    let mut opts = snap_chaos_opts(909);
    opts.snap_chunk_bytes = 8;
    let mut cluster = Cluster::build(opts);
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    // 70 ms dark at 25 krps with a 64-entry horizon: rejoin must go
    // through state transfer, and at 8-byte chunks the stream cannot
    // finish inside one compaction interval.
    cluster.sim.kill_at(victim, ms(250));
    cluster.sim.restart_at(victim, ms(320));

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    // Generous drain: the final transfer plus log catch-up must land.
    cluster.run_checked(SimDur::millis(300));

    let vstats = cluster.sim.agent::<ServerAgent>(victim).node().stats();
    assert!(
        vstats.installs >= 1,
        "rejoin must complete at least one snapshot install: {vstats:?}"
    );
    assert_converged(&cluster);
    assert_state_identical(&cluster);
}

/// Runs one randomized chaos case end to end: draw a survivable fault plan
/// from the seed, inject it, and require the PR-1 invariants plus
/// convergence and bounded client-visible loss.
fn run_chaos_case(seed: u64) {
    let opts = chaos_opts(seed);
    let episodes = 3usize;
    let mut cluster = Cluster::build(opts);
    cluster.settle();
    let plan = FaultPlan::generate(&FaultPlanConfig {
        nodes: cluster.servers.clone(),
        window_start: ms(210),
        window_end: ms(460),
        episodes,
        seed,
    });
    cluster.sim.apply_fault_plan(&plan);

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    cluster.run_checked(SimDur::millis(200));
    assert_converged(&cluster);

    let r = cluster.client_results();
    let lost = r.sent.saturating_sub(r.responses + r.nacks);
    let budget = (episodes * cluster.opts().bound + 64) as u64;
    assert!(
        lost <= budget,
        "seed {seed}: lost {lost} replies > budget {budget} ({r:?})"
    );
}

/// One randomized snapshot chaos case: the same survivable fault plan as
/// [`run_chaos_case`], but at the snapshot chaos point where compaction is
/// continuous — so restarts and partitions inside the fault window land
/// before, inside, and after snapshot state transfers. On top of the
/// standard invariants and convergence, the state machines of all live
/// replicas must end bit-identical (a transferred node equals a replaying
/// reference), and compaction must actually have run.
fn run_snapshot_chaos_case(seed: u64) {
    let opts = snap_chaos_opts(seed);
    let episodes = 3usize;
    let mut cluster = Cluster::build(opts);
    cluster.settle();
    let plan = FaultPlan::generate(&FaultPlanConfig {
        nodes: cluster.servers.clone(),
        window_start: ms(210),
        window_end: ms(460),
        episodes,
        seed,
    });
    cluster.sim.apply_fault_plan(&plan);

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    cluster.run_checked(SimDur::millis(200));
    assert_converged(&cluster);
    assert_state_identical(&cluster);

    let snapshots: u64 = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| cluster.sim.is_alive(s))
        .map(|s| cluster.sim.agent::<ServerAgent>(s).node().stats().snapshots)
        .sum();
    assert!(snapshots > 0, "seed {seed}: compaction never ran");

    let r = cluster.client_results();
    let lost = r.sent.saturating_sub(r.responses + r.nacks);
    let budget = (episodes * cluster.opts().bound + 64) as u64;
    assert!(
        lost <= budget,
        "seed {seed}: lost {lost} replies > budget {budget} ({r:?})"
    );
}

/// Reads a u64 env knob, accepting decimal or `0x`-prefixed hex.
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(default)
}

#[test]
fn random_fault_plans_preserve_invariants_and_liveness() {
    let cases = env_u64("CHAOS_CASES", 3);
    let base = env_u64("CHAOS_SEED", 0xc0ffee);
    let seeds: Vec<u64> = (0..cases)
        .map(|i| base.wrapping_add(i.wrapping_mul(7919)))
        .collect();
    // Each seed is an independent single-threaded simulation; shard them
    // across HC_JOBS workers. A failing seed's panic propagates here.
    hovercraft_bench::sweep::par_map(seeds, run_chaos_case);
}

/// Fresh seeded fault plans at the snapshot chaos point — the CI chaos job
/// runs this with `CHAOS_CASES=64`, so every CI run explores ≥ 64 new
/// kill/partition/pause schedules against in-flight state transfers. The
/// seed stream is offset from the plain sweep's so the two families never
/// replay the same plans.
#[test]
fn random_snapshot_fault_plans_converge_with_identical_state() {
    let cases = env_u64("CHAOS_CASES", 3);
    let base = env_u64("CHAOS_SEED", 0xc0ffee).wrapping_add(0x5eed_0000);
    let seeds: Vec<u64> = (0..cases)
        .map(|i| base.wrapping_add(i.wrapping_mul(6007)))
        .collect();
    hovercraft_bench::sweep::par_map(seeds, run_snapshot_chaos_case);
}

/// Every seed in the committed corpus replays a fault mix that once ran in
/// CI; keeping them green makes past chaos runs regression tests. Bare
/// lines run at the standard chaos point; `snap:<seed>` lines run at the
/// snapshot chaos point (continuous compaction + chunked state transfer).
#[test]
fn committed_fault_plan_corpus_stays_green() {
    let mut plain: Vec<u64> = Vec::new();
    let mut snap: Vec<u64> = Vec::new();
    for line in include_str!("chaos_corpus.txt")
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
    {
        match line.strip_prefix("snap:") {
            Some(s) => snap.push(s.trim().parse().expect("snap: lines carry a seed")),
            // `mc:` lines are model-checker action traces, not fault-plan
            // seeds; tests/mc.rs::committed_mc_corpus_seeds_verify replays
            // them.
            None if line.starts_with("mc:") => {}
            None => plain.push(line.parse().expect("corpus lines are bare seeds")),
        }
    }
    assert!(
        plain.len() >= 4,
        "corpus unexpectedly small: {} seeds",
        plain.len()
    );
    assert!(
        snap.len() >= 4,
        "snapshot corpus unexpectedly small: {} seeds",
        snap.len()
    );
    hovercraft_bench::sweep::par_map(plain, run_chaos_case);
    hovercraft_bench::sweep::par_map(snap, run_snapshot_chaos_case);
}

#[test]
fn chaos_runs_are_bit_exact_replayable() {
    let run = |seed: u64| {
        let mut cluster = Cluster::build(chaos_opts(seed));
        cluster.settle();
        let cfg = FaultPlanConfig {
            nodes: cluster.servers.clone(),
            window_start: ms(210),
            window_end: ms(460),
            episodes: 3,
            seed,
        };
        let plan = FaultPlan::generate(&cfg);
        cluster.sim.apply_fault_plan(&plan);
        let end = cluster.opts().load_end() + SimDur::millis(20);
        cluster.run_until_checked(end);
        cluster.run_checked(SimDur::millis(150));
        let r = cluster.client_results();
        (
            plan,
            cluster.tracer().total_recorded(),
            cluster.tracer().render_tail(256),
            (r.sent, r.responses, r.nacks, r.retries, r.duplicates),
        )
    };
    let (plan_a, total_a, tail_a, res_a) = run(777);
    let (plan_b, total_b, tail_b, res_b) = run(777);
    assert_eq!(
        plan_a, plan_b,
        "fault schedule is a pure function of (cfg, seed)"
    );
    assert_eq!(total_a, total_b, "identical protocol event counts");
    assert_eq!(tail_a, tail_b, "identical protocol trace");
    assert_eq!(res_a, res_b, "identical client-visible outcome");
}

#[test]
fn invariant_violations_dump_a_replayable_bundle() {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 5_000.0);
    o.seed = 424_242;
    let mut cluster = Cluster::build(o);
    cluster.settle();
    // A few checked steps establish the checker's per-term queue-depth
    // baseline before the corruption.
    cluster.run_checked(SimDur::millis(30));
    let leader = cluster.leader().expect("leader");
    let member = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    let bound = cluster.opts().bound;
    {
        let node = cluster.sim.agent_mut::<ServerAgent>(leader).node_mut();
        for idx in 1..=(2 * bound as u64 + 1) {
            node.ledger_mut().assign(member, idx);
        }
    }
    let err = catch_unwind(AssertUnwindSafe(|| cluster.assert_invariants()))
        .expect_err("an over-B replier queue must trip the checker");
    let msg = err
        .downcast_ref::<String>()
        .expect("violation panics carry a message")
        .clone();
    assert!(msg.contains("bounded_queue"), "{msg}");
    let path = msg
        .split("replay bundle: ")
        .nth(1)
        .expect("panic message names the bundle")
        .trim();
    let bundle = std::fs::read_to_string(path).expect("bundle written to disk");
    assert!(bundle.contains("seed: 424242"), "bundle records the seed");
    assert!(
        bundle.contains("## node state"),
        "bundle records node state"
    );
    assert!(bundle.contains("## trace tail"), "bundle records the trace");
}
