//! Chaos property suite: deterministic, seeded fault injection across the
//! full stack. Scenario tests pin down the three headline behaviours —
//! majority-side progress under partition with Pre-Vote term stability,
//! stall-aware replier routing around a paused node (§3.4), and
//! crash–restart rejoin via log catch-up plus body recovery (§5) — while
//! randomized [`FaultPlan`]s (env-scalable via `CHAOS_CASES` /
//! `CHAOS_SEED`) and a committed seed corpus sweep the space, sharded
//! across cores by the workspace pool (`HC_JOBS`; each seed is one
//! single-threaded deterministic simulation). Every run is replayable
//! from `(opts, seed)` alone; a meta-test proves it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hovercraft::PolicyKind;
use simnet::{FaultPlan, FaultPlanConfig, SimDur, SimTime, TraceEvent};
use testbed::{Cluster, ClusterOpts, RetryPolicy, ServerAgent, Setup};

fn ms(x: u64) -> SimTime {
    SimTime::ZERO + SimDur::millis(x)
}

/// The standard chaos point: 5-way HovercRaft under moderate load with
/// client retries on, so requests survive the faults they straddle.
/// Load runs 150–500 ms (50 ms warm-up, 300 ms measured).
fn chaos_opts(seed: u64) -> ClusterOpts {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 5, 25_000.0);
    o.warmup = SimDur::millis(50);
    o.measure = SimDur::millis(300);
    o.bound = 64;
    o.retry = Some(RetryPolicy::default());
    o.seed = seed;
    o
}

fn term_of(cluster: &Cluster, node: u32) -> u64 {
    cluster.sim.agent::<ServerAgent>(node).node().raft().term()
}

fn commit_of(cluster: &Cluster, node: u32) -> u64 {
    cluster
        .sim
        .agent::<ServerAgent>(node)
        .node()
        .raft()
        .commit_index()
}

/// All live replicas applied the same prefix.
fn assert_converged(cluster: &Cluster) {
    let applied: Vec<u64> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| cluster.sim.is_alive(s))
        .map(|s| cluster.sim.agent::<ServerAgent>(s).node().applied_index())
        .collect();
    assert!(
        applied.windows(2).all(|w| w[0] == w[1]),
        "live replicas diverged after drain: {applied:?}"
    );
}

#[test]
fn majority_partition_keeps_committing_and_pre_vote_freezes_terms() {
    let mut cluster = Cluster::build(chaos_opts(101));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let term0 = term_of(&cluster, leader);

    // Cut off two followers; the leader keeps a quorum of three.
    let minority: Vec<u32> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| s != leader)
        .take(2)
        .collect();
    let majority: Vec<u32> = cluster
        .servers
        .iter()
        .copied()
        .filter(|&s| !minority.contains(&s))
        .collect();
    cluster.sim.partition_at(vec![majority, minority], ms(250));
    cluster.sim.heal_at(ms(400));

    cluster.run_until_checked(ms(280));
    let c1 = commit_of(&cluster, leader);
    cluster.run_until_checked(ms(380));
    let c2 = commit_of(&cluster, leader);
    assert!(
        c2 > c1 + 1_000,
        "majority side must keep committing through the partition: {c1} -> {c2}"
    );

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    cluster.run_checked(SimDur::millis(150));

    // Pre-Vote: the healed minority's election attempts never reached a
    // quorum and never bumped terms, so the stable leader is undisturbed.
    assert_eq!(
        cluster.leader(),
        Some(leader),
        "healed minority must not depose the stable leader"
    );
    assert_eq!(
        term_of(&cluster, leader),
        term0,
        "no term change across partition + heal"
    );
    assert_converged(&cluster);
}

#[test]
fn paused_replier_is_detected_and_routed_around() {
    let mut cluster = Cluster::build(chaos_opts(202));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    let paused_at = ms(250);
    let resumed_at = ms(420);
    cluster.sim.pause_at(victim, paused_at);
    cluster.sim.resume_at(victim, resumed_at);

    // Harvest the trace incrementally (the ring is bounded) while running
    // the full load under invariant checking.
    let mut cursor = 0u64;
    let mut harvested: Vec<TraceEvent> = Vec::new();
    let end = cluster.opts().load_end() + SimDur::millis(20);
    while cluster.sim.now() < end {
        let next = (cluster.sim.now() + SimDur::millis(5)).min(end);
        cluster.run_until_checked(next);
        let events = cluster.tracer().events_since(cursor);
        if let Some(last) = events.last() {
            cursor = last.seq + 1;
        }
        harvested.extend(events);
    }
    cluster.run_checked(SimDur::millis(150));
    harvested.extend(cluster.tracer().events_since(cursor));

    // Within the stall-detection timeout (5 ms, plus announcement slack)
    // the leader must stop assigning replies to the silent node, and not
    // resume until the node is back.
    let grace = paused_at + SimDur::millis(15);
    let marker = format!("replier=n{victim}");
    let bad: Vec<&TraceEvent> = harvested
        .iter()
        .filter(|e| {
            e.kind == "replier_assigned"
                && e.at >= grace
                && e.at < resumed_at
                && e.detail.to_text().ends_with(&marker)
        })
        .collect();
    assert!(
        bad.is_empty(),
        "leader kept assigning replies to a stalled node: {bad:?}"
    );
    assert!(
        harvested
            .iter()
            .any(|e| e.kind == "replier_stalled" && e.key == victim as u64 && e.at < grace),
        "stall must be detected and traced within the timeout"
    );
    assert!(
        harvested
            .iter()
            .any(|e| e.kind == "replier_recovered" && e.key == victim as u64 && e.at >= resumed_at),
        "resumed node must re-enter the candidate set"
    );
    assert_converged(&cluster);
}

#[test]
fn restarted_follower_rejoins_and_catches_up() {
    let mut cluster = Cluster::build(chaos_opts(303));
    cluster.settle();
    let leader = cluster.leader().expect("settled leader");
    let victim = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    cluster.sim.restart_at(victim, ms(300));

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    assert_eq!(cluster.sim.restarts(victim), 1, "exactly one crash–restart");
    assert!(cluster.sim.is_alive(victim), "restarted node is back");

    // Drain: log catch-up, body recovery for unpooled entries, and
    // re-execution from index 1 all complete within the run.
    cluster.run_checked(SimDur::millis(200));
    let leader_now = cluster.leader().expect("a leader at the end");
    let applied_leader = cluster
        .sim
        .agent::<ServerAgent>(leader_now)
        .node()
        .applied_index();
    let applied_victim = cluster
        .sim
        .agent::<ServerAgent>(victim)
        .node()
        .applied_index();
    assert!(applied_leader > 0, "the run made progress");
    assert_eq!(
        applied_victim, applied_leader,
        "restarted follower must fully catch up"
    );
    assert_converged(&cluster);
}

/// Runs one randomized chaos case end to end: draw a survivable fault plan
/// from the seed, inject it, and require the PR-1 invariants plus
/// convergence and bounded client-visible loss.
fn run_chaos_case(seed: u64) {
    let opts = chaos_opts(seed);
    let episodes = 3usize;
    let mut cluster = Cluster::build(opts);
    cluster.settle();
    let plan = FaultPlan::generate(&FaultPlanConfig {
        nodes: cluster.servers.clone(),
        window_start: ms(210),
        window_end: ms(460),
        episodes,
        seed,
    });
    cluster.sim.apply_fault_plan(&plan);

    let end = cluster.opts().load_end() + SimDur::millis(20);
    cluster.run_until_checked(end);
    cluster.run_checked(SimDur::millis(200));
    assert_converged(&cluster);

    let r = cluster.client_results();
    let lost = r.sent.saturating_sub(r.responses + r.nacks);
    let budget = (episodes * cluster.opts().bound + 64) as u64;
    assert!(
        lost <= budget,
        "seed {seed}: lost {lost} replies > budget {budget} ({r:?})"
    );
}

/// Reads a u64 env knob, accepting decimal or `0x`-prefixed hex.
fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(default)
}

#[test]
fn random_fault_plans_preserve_invariants_and_liveness() {
    let cases = env_u64("CHAOS_CASES", 3);
    let base = env_u64("CHAOS_SEED", 0xc0ffee);
    let seeds: Vec<u64> = (0..cases)
        .map(|i| base.wrapping_add(i.wrapping_mul(7919)))
        .collect();
    // Each seed is an independent single-threaded simulation; shard them
    // across HC_JOBS workers. A failing seed's panic propagates here.
    hovercraft_bench::sweep::par_map(seeds, run_chaos_case);
}

/// Every seed in the committed corpus replays a fault mix that once ran in
/// CI; keeping them green makes past chaos runs regression tests.
#[test]
fn committed_fault_plan_corpus_stays_green() {
    let seeds: Vec<u64> = include_str!("chaos_corpus.txt")
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| line.parse().expect("corpus lines are bare seeds"))
        .collect();
    assert!(
        seeds.len() >= 4,
        "corpus unexpectedly small: {} seeds",
        seeds.len()
    );
    hovercraft_bench::sweep::par_map(seeds, run_chaos_case);
}

#[test]
fn chaos_runs_are_bit_exact_replayable() {
    let run = |seed: u64| {
        let mut cluster = Cluster::build(chaos_opts(seed));
        cluster.settle();
        let cfg = FaultPlanConfig {
            nodes: cluster.servers.clone(),
            window_start: ms(210),
            window_end: ms(460),
            episodes: 3,
            seed,
        };
        let plan = FaultPlan::generate(&cfg);
        cluster.sim.apply_fault_plan(&plan);
        let end = cluster.opts().load_end() + SimDur::millis(20);
        cluster.run_until_checked(end);
        cluster.run_checked(SimDur::millis(150));
        let r = cluster.client_results();
        (
            plan,
            cluster.tracer().total_recorded(),
            cluster.tracer().render_tail(256),
            (r.sent, r.responses, r.nacks, r.retries, r.duplicates),
        )
    };
    let (plan_a, total_a, tail_a, res_a) = run(777);
    let (plan_b, total_b, tail_b, res_b) = run(777);
    assert_eq!(
        plan_a, plan_b,
        "fault schedule is a pure function of (cfg, seed)"
    );
    assert_eq!(total_a, total_b, "identical protocol event counts");
    assert_eq!(tail_a, tail_b, "identical protocol trace");
    assert_eq!(res_a, res_b, "identical client-visible outcome");
}

#[test]
fn invariant_violations_dump_a_replayable_bundle() {
    let mut o = ClusterOpts::new(Setup::Hovercraft(PolicyKind::Jbsq), 3, 5_000.0);
    o.seed = 424_242;
    let mut cluster = Cluster::build(o);
    cluster.settle();
    // A few checked steps establish the checker's per-term queue-depth
    // baseline before the corruption.
    cluster.run_checked(SimDur::millis(30));
    let leader = cluster.leader().expect("leader");
    let member = cluster
        .servers
        .iter()
        .copied()
        .find(|&s| s != leader)
        .expect("a follower");
    let bound = cluster.opts().bound;
    {
        let node = cluster.sim.agent_mut::<ServerAgent>(leader).node_mut();
        for idx in 1..=(2 * bound as u64 + 1) {
            node.ledger_mut().assign(member, idx);
        }
    }
    let err = catch_unwind(AssertUnwindSafe(|| cluster.assert_invariants()))
        .expect_err("an over-B replier queue must trip the checker");
    let msg = err
        .downcast_ref::<String>()
        .expect("violation panics carry a message")
        .clone();
    assert!(msg.contains("bounded_queue"), "{msg}");
    let path = msg
        .split("replay bundle: ")
        .nth(1)
        .expect("panic message names the bundle")
        .trim();
    let bundle = std::fs::read_to_string(path).expect("bundle written to disk");
    assert!(bundle.contains("seed: 424242"), "bundle records the seed");
    assert!(
        bundle.contains("## node state"),
        "bundle records node state"
    );
    assert!(bundle.contains("## trace tail"), "bundle records the trace");
}
