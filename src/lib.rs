//! # hovercraft-repro — umbrella crate
//!
//! A complete, from-scratch Rust reproduction of **HovercRaft: Achieving
//! Scalability and Fault-tolerance for microsecond-scale Datacenter
//! Services** (Kogias & Bugnion, EuroSys '20). This crate re-exports every
//! subsystem so examples and downstream users can depend on one name:
//!
//! * [`hovercraft`] — the paper's contribution: the SMR-aware RPC layer,
//!   replier load balancing, bounded queues, the in-network aggregator, and
//!   flow control;
//! * [`raft`] — the sans-io Raft consensus substrate;
//! * [`r2p2`] — the datacenter RPC transport;
//! * [`simnet`] — the deterministic discrete-event fabric that stands in
//!   for the paper's DPDK/10GbE/Tofino testbed;
//! * [`minikv`] — the Redis-like store with YCSB-E module operations;
//! * [`workload`] / [`lancet`] — workload generation and open-loop load
//!   measurement;
//! * [`testbed`] — cluster assembly and the experiment runner.
//!
//! See `examples/` for runnable entry points and the `hovercraft-bench`
//! crate for the per-figure reproduction harness.

#![warn(missing_docs)]

pub use hovercraft;
pub use lancet;
pub use minikv;
pub use r2p2;
pub use raft;
pub use simnet;
pub use testbed;
pub use workload;
